//! Non-partitioned hash join (OLAP application, §5.3.6, Fig. 20).
//!
//! Workload A from the literature the paper follows: 16-byte tuples, a build
//! relation `R` and a probe relation `S` with |S| = 16·|R| (2^27 and 2^31 in
//! the paper; scaled down by default here). The build phase inserts R into a
//! DLHT instance; the probe phase streams S in batches so DLHT's software
//! prefetching can overlap the random index accesses. Throughput is reported
//! as `(|R| + |S|) / runtime` tuples per second, as in the paper.

use dlht_core::{Batch, BatchPolicy, DlhtMap, KvBackend, Response};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Result of one join run.
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// Tuples in the build relation.
    pub build_tuples: u64,
    /// Tuples in the probe relation.
    pub probe_tuples: u64,
    /// Probe tuples that found a match.
    pub matches: u64,
    /// Wall-clock runtime of build + probe.
    pub elapsed: Duration,
    /// Million tuples per second: (|R| + |S|) / runtime.
    pub mtuples_per_sec: f64,
}

/// Run the non-partitioned join over DLHT (the paper's configuration): build
/// `r_tuples` keys, probe `s_tuples` lookups from `threads` threads, with or
/// without batching.
pub fn run_hash_join(
    r_tuples: u64,
    s_tuples: u64,
    threads: usize,
    batch_size: usize,
    batched: bool,
) -> JoinResult {
    let map = DlhtMap::with_capacity(r_tuples as usize + 1);
    run_hash_join_on(&map, r_tuples, s_tuples, threads, batch_size, batched)
}

/// Run the non-partitioned join against any [`KvBackend`].
pub fn run_hash_join_on(
    map: &dyn KvBackend,
    r_tuples: u64,
    s_tuples: u64,
    threads: usize,
    batch_size: usize,
    batched: bool,
) -> JoinResult {
    let threads = threads.max(1) as u64;
    let matches = AtomicU64::new(0);
    let start = Instant::now();

    // Build phase: every thread inserts a stripe of R. Key i carries payload
    // i (the "row id" of the 16-byte tuple).
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut k = t;
                while k < r_tuples {
                    let _ = map.insert(k, k).unwrap();
                    k += threads;
                }
            });
        }
    });

    // Probe phase: S references R keys round-robin (every probe matches, as
    // in workload A's primary-key/foreign-key join).
    std::thread::scope(|s| {
        for t in 0..threads {
            let matches = &matches;
            s.spawn(move || {
                let mut local_matches = 0u64;
                let mut probe = t;
                // One reusable batch per thread: the probe loop allocates
                // nothing once the buffers are warm.
                let mut batch = Batch::with_capacity(batch_size.max(1));
                while probe < s_tuples {
                    if batched {
                        batch.clear();
                        while batch.len() < batch_size && probe < s_tuples {
                            batch.push_get(probe % r_tuples);
                            probe += threads;
                        }
                        map.execute(&mut batch, BatchPolicy::RunAll);
                        for resp in batch.responses() {
                            match resp {
                                Response::Value(Some(_)) => local_matches += 1,
                                Response::Value(None) => {}
                                // RunAll never skips, and a Get-only batch
                                // yields only Value responses.
                                other => unreachable!("unexpected probe response {other:?}"),
                            }
                        }
                    } else {
                        if map.get(probe % r_tuples).is_some() {
                            local_matches += 1;
                        }
                        probe += threads;
                    }
                }
                matches.fetch_add(local_matches, Ordering::Relaxed);
            });
        }
    });

    let elapsed = start.elapsed();
    JoinResult {
        build_tuples: r_tuples,
        probe_tuples: s_tuples,
        matches: matches.load(Ordering::Relaxed),
        elapsed,
        mtuples_per_sec: (r_tuples + s_tuples) as f64 / elapsed.as_secs_f64() / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_probe_matches_in_workload_a() {
        let r = run_hash_join(10_000, 40_000, 2, 16, true);
        assert_eq!(r.build_tuples, 10_000);
        assert_eq!(r.probe_tuples, 40_000);
        assert_eq!(r.matches, 40_000, "PK/FK join: every probe must match");
        assert!(r.mtuples_per_sec > 0.0);
    }

    #[test]
    fn batched_and_unbatched_produce_identical_matches() {
        let a = run_hash_join(5_000, 20_000, 2, 32, true);
        let b = run_hash_join(5_000, 20_000, 2, 32, false);
        assert_eq!(a.matches, b.matches);
    }
}
