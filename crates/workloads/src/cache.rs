//! Cache-persona workload generators: deterministic operation streams for
//! the TTL/eviction engine (`dlht_core::CacheMap`) and the memcache text
//! protocol.
//!
//! Two trace families, matching the two stresses a production cache sees:
//!
//! * [`ZipfianChurn`] — a cache-aside read-mostly trace over a skewed key
//!   population: mostly `Get`s (the caller fills on miss, which is what
//!   cache-aside applications do), a trickle of invalidating `Delete`s and
//!   refreshing `Set`s. Skew means a small hot set dominates — the trace
//!   that separates LRU-ish eviction from FIFO.
//! * [`ExpiryStorm`] — a burst of `Set`s whose TTLs all land inside a short
//!   window, followed by the clock stepping past them: the worst case for
//!   the expiry reaper (everything dies at once and must be reclaimed to
//!   zero).
//!
//! Both are seeded and allocation-free per op, like the rest of the
//! workload harness; keys are returned as `u64` ids, and
//! [`cache_key_bytes`] renders the id into a caller-provided buffer in the
//! repo's canonical `k<decimal>` form so protocol-level and engine-level
//! consumers agree on the byte keys.

use crate::rng::{KeySampler, Xoshiro256};

/// One cache operation in a generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// Look the key up; on a miss, a cache-aside caller stores it back with
    /// the trace's value length and default TTL.
    Get { key: u64 },
    /// Store (refresh) the key with `value_len` bytes and `exptime`
    /// (memcache semantics: 0 = never, positive = relative seconds).
    Set {
        key: u64,
        value_len: usize,
        exptime: i64,
    },
    /// Invalidate the key.
    Delete { key: u64 },
    /// Extend the key's deadline.
    Touch { key: u64, exptime: i64 },
}

impl CacheOp {
    /// The key id the operation targets.
    pub fn key(&self) -> u64 {
        match *self {
            CacheOp::Get { key }
            | CacheOp::Set { key, .. }
            | CacheOp::Delete { key }
            | CacheOp::Touch { key, .. } => key,
        }
    }
}

/// Render key id `id` as the canonical trace key (`k123`) into `buf`,
/// returning the filled prefix. 24 bytes always suffice.
pub fn cache_key_bytes(buf: &mut [u8; 24], id: u64) -> &[u8] {
    buf[0] = b'k';
    let mut digits = [0u8; 20];
    let text = dlht_core::format_decimal_u64(&mut digits, id);
    let len = 1 + text.len();
    buf[1..len].copy_from_slice(text);
    &buf[..len]
}

/// Cache-aside churn over a zipfian-skewed population (module docs).
///
/// Per mille knobs instead of floats keep the generator integer-exact and
/// the op mix reproducible across platforms.
pub struct ZipfianChurn {
    sampler: KeySampler,
    rng: Xoshiro256,
    /// ‰ of operations that are explicit `Set`s (refreshes).
    set_permille: u64,
    /// ‰ of operations that are `Delete`s (invalidations).
    delete_permille: u64,
    /// ‰ of operations that are `Touch`es.
    touch_permille: u64,
    /// Stored value size in bytes.
    pub value_len: usize,
    /// Relative TTL attached to `Set`/`Touch` (0 = never expires).
    pub exptime: i64,
}

impl ZipfianChurn {
    /// A read-mostly trace: ~93% Get, 4% Set, 2% Delete, 1% Touch over
    /// `population` keys with zipfian parameter `theta` (0.99 = YCSB skew).
    pub fn new(population: u64, theta: f64, seed: u64, value_len: usize) -> ZipfianChurn {
        ZipfianChurn {
            sampler: KeySampler::zipfian(population, theta),
            rng: Xoshiro256::new(seed ^ 0xCAC4E),
            set_permille: 40,
            delete_permille: 20,
            touch_permille: 10,
            value_len,
            exptime: 0,
        }
    }

    /// Number of distinct keys the trace draws from.
    pub fn population(&self) -> u64 {
        self.sampler.population()
    }

    /// Override the mutation mix (‰ of sets/deletes/touches; the remainder
    /// are gets). Panics if the three exceed 1000‰.
    pub fn with_mix(mut self, set: u64, delete: u64, touch: u64) -> ZipfianChurn {
        assert!(set + delete + touch <= 1000, "mix exceeds 1000 permille");
        self.set_permille = set;
        self.delete_permille = delete;
        self.touch_permille = touch;
        self
    }

    /// Attach a relative TTL to every Set/Touch the trace emits.
    pub fn with_exptime(mut self, exptime: i64) -> ZipfianChurn {
        self.exptime = exptime;
        self
    }

    /// Draw the next operation.
    pub fn next_op(&mut self) -> CacheOp {
        let key = self.sampler.sample(&mut self.rng);
        let roll = self.rng.next_below(1000);
        if roll < self.set_permille {
            CacheOp::Set {
                key,
                value_len: self.value_len,
                exptime: self.exptime,
            }
        } else if roll < self.set_permille + self.delete_permille {
            CacheOp::Delete { key }
        } else if roll < self.set_permille + self.delete_permille + self.touch_permille {
            CacheOp::Touch {
                key,
                exptime: self.exptime,
            }
        } else {
            CacheOp::Get { key }
        }
    }
}

/// An expiry storm (module docs): `keys` distinct keys stored with TTLs
/// drawn uniformly from `[ttl_min, ttl_max]` seconds, in a seeded-shuffled
/// order so deadlines are not correlated with table placement.
pub struct ExpiryStorm {
    rng: Xoshiro256,
    next: u64,
    keys: u64,
    ttl_min: i64,
    ttl_max: i64,
    /// Stored value size in bytes.
    pub value_len: usize,
}

impl ExpiryStorm {
    /// A storm of `keys` sets with TTLs in `[ttl_min, ttl_max]` seconds.
    pub fn new(keys: u64, seed: u64, ttl_min: i64, ttl_max: i64, value_len: usize) -> ExpiryStorm {
        assert!(0 < ttl_min && ttl_min <= ttl_max, "bad TTL window");
        ExpiryStorm {
            rng: Xoshiro256::new(seed ^ 0x5_70F4),
            next: 0,
            keys,
            ttl_min,
            ttl_max,
            value_len,
        }
    }

    /// The deadline horizon: after the clock advances `ttl_max` seconds,
    /// every entry the storm stored is dead.
    pub fn horizon_secs(&self) -> i64 {
        self.ttl_max
    }
}

impl Iterator for ExpiryStorm {
    type Item = CacheOp;

    fn next(&mut self) -> Option<CacheOp> {
        if self.next >= self.keys {
            return None;
        }
        let key = self.next;
        self.next += 1;
        let window = (self.ttl_max - self.ttl_min) as u64 + 1;
        let exptime = self.ttl_min + self.rng.next_below(window) as i64;
        Some(CacheOp::Set {
            key,
            value_len: self.value_len,
            exptime,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zipfian_churn_is_deterministic_and_read_mostly() {
        let mut a = ZipfianChurn::new(10_000, 0.99, 42, 64);
        let mut b = ZipfianChurn::new(10_000, 0.99, 42, 64);
        let mut gets = 0u64;
        let mut sets = 0u64;
        for _ in 0..20_000 {
            let op = a.next_op();
            assert_eq!(op, b.next_op(), "same seed, same trace");
            match op {
                CacheOp::Get { .. } => gets += 1,
                CacheOp::Set { .. } => sets += 1,
                _ => {}
            }
        }
        assert!(gets > 17_000, "read-mostly: {gets} gets");
        assert!(sets > 400, "sets occur: {sets}");
        let mut c = ZipfianChurn::new(10_000, 0.99, 43, 64);
        assert_ne!(
            (0..32).map(|_| a.next_op()).collect::<Vec<_>>(),
            (0..32).map(|_| c.next_op()).collect::<Vec<_>>(),
            "different seeds diverge"
        );
    }

    #[test]
    fn zipfian_churn_is_skewed_toward_a_hot_set() {
        let mut churn = ZipfianChurn::new(100_000, 0.99, 7, 32);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(churn.next_op().key()).or_default() += 1;
        }
        let hot: u64 = counts
            .iter()
            .filter(|(k, _)| **k < 100)
            .map(|(_, c)| c)
            .sum();
        assert!(
            hot > 15_000,
            "top 0.1% of keys must draw a large share, got {hot}/50000"
        );
    }

    #[test]
    fn expiry_storm_covers_every_key_within_the_ttl_window() {
        let ops: Vec<CacheOp> = ExpiryStorm::new(1_000, 9, 1, 5, 16).collect();
        assert_eq!(ops.len(), 1_000);
        for (i, op) in ops.iter().enumerate() {
            let CacheOp::Set {
                key,
                exptime,
                value_len,
            } = *op
            else {
                panic!("storms are all sets");
            };
            assert_eq!(key, i as u64);
            assert!((1..=5).contains(&exptime), "TTL {exptime} outside window");
            assert_eq!(value_len, 16);
        }
        assert_eq!(ExpiryStorm::new(1_000, 9, 1, 5, 16).horizon_secs(), 5);
    }

    #[test]
    fn key_bytes_render_canonically() {
        let mut buf = [0u8; 24];
        assert_eq!(cache_key_bytes(&mut buf, 0), b"k0");
        let mut buf = [0u8; 24];
        assert_eq!(
            cache_key_bytes(&mut buf, 18_446_744_073_709_551_615),
            b"k18446744073709551615"
        );
    }
}
