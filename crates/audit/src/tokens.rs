//! A token stream over the sanitized [`crate::lexer`] output.
//!
//! The line lexer already strips comments and blanks literal contents; this
//! module lifts the surviving code into a flat token vector with
//! brace/bracket/paren *tree structure*: every `Open` token knows the index
//! of its matching `Close` (and vice versa) via [`TokenFile::pair`], so a
//! consumer can skip a whole group — a macro invocation's token tree, a
//! function body, a generic argument list — in O(1).
//!
//! Design notes:
//!
//! * **Words** cover identifiers, keywords, and numeric literals alike; the
//!   parser distinguishes keywords by spelling. Raw identifiers (`r#type`)
//!   are one `Word` token *including* the `r#` prefix, so they can never be
//!   mistaken for the keyword they shadow.
//! * **`>>` is two `>` puncts.** Rust's own lexer splits `>>` when closing
//!   nested generics (`Vec<Vec<u8>>`); emitting single-char puncts gives the
//!   parser the same freedom, and a real shift-right is simply two adjacent
//!   `>` tokens it never interprets as delimiters.
//! * Angle brackets are **not** delimiters here (`a < b` is undecidable at
//!   token level); [`crate::parse`] tracks them contextually.
//! * String literal *remnants* (the quotes the lexer keeps for column
//!   fidelity) are consumed statefully — a quote opens, the next quote
//!   closes, across lines — and emit no tokens at all.

use crate::lexer::LexedFile;

/// A delimiter kind with real tree structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` `)`
    Paren,
    /// `[` `]`
    Bracket,
    /// `{` `}`
    Brace,
}

/// One token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier, keyword, or number (`self`, `fn`, `0x1F`, `r#type`).
    Word(String),
    /// A lifetime, without the quote (`'a` → `a`).
    Lifetime(String),
    /// A single punctuation character (`>` twice for `>>`).
    Punct(char),
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
}

impl Tok {
    /// The word's text, if this token is a [`Tok::Word`].
    pub fn word(&self) -> Option<&str> {
        match self {
            Tok::Word(w) => Some(w.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the word `w`.
    pub fn is_word(&self, w: &str) -> bool {
        self.word() == Some(w)
    }

    /// Whether this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// A token with its 0-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

/// A whole file as a token stream with delimiter pairing.
#[derive(Debug, Clone, Default)]
pub struct TokenFile {
    pub toks: Vec<Token>,
    /// `pair[i]` is the index of the matching delimiter for an `Open`/`Close`
    /// token at `i` (`None` for non-delimiters and unbalanced input).
    pub pair: Vec<Option<usize>>,
}

impl TokenFile {
    /// Token at `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i).map(|t| &t.tok)
    }

    /// 0-based line of token `i` (`0` past the end).
    pub fn line(&self, i: usize) -> usize {
        self.toks.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Matching delimiter index for the `Open`/`Close` at `i`.
    pub fn match_of(&self, i: usize) -> Option<usize> {
        self.pair.get(i).copied().flatten()
    }

    /// Render tokens `range` (half-open) as compact text, for messages and
    /// coarse matching. Words are space-separated; puncts attach.
    pub fn text(&self, start: usize, end: usize) -> String {
        let mut out = String::new();
        let mut prev_word = false;
        for t in &self.toks[start.min(self.toks.len())..end.min(self.toks.len())] {
            match &t.tok {
                Tok::Word(w) => {
                    if prev_word {
                        out.push(' ');
                    }
                    out.push_str(w);
                    prev_word = true;
                }
                Tok::Lifetime(l) => {
                    if prev_word {
                        out.push(' ');
                    }
                    out.push('\'');
                    out.push_str(l);
                    prev_word = true;
                }
                Tok::Punct(c) => {
                    out.push(*c);
                    prev_word = false;
                }
                Tok::Open(d) => {
                    out.push(match d {
                        Delim::Paren => '(',
                        Delim::Bracket => '[',
                        Delim::Brace => '{',
                    });
                    prev_word = false;
                }
                Tok::Close(d) => {
                    out.push(match d {
                        Delim::Paren => ')',
                        Delim::Bracket => ']',
                        Delim::Brace => '}',
                    });
                    prev_word = false;
                }
            }
        }
        out
    }

    /// Whether any token in `range` (half-open) is the word `w`.
    pub fn range_has_word(&self, start: usize, end: usize, w: &str) -> bool {
        self.toks[start.min(self.toks.len())..end.min(self.toks.len())]
            .iter()
            .any(|t| t.tok.is_word(w))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize a lexed file.
pub fn tokenize(lexed: &LexedFile) -> TokenFile {
    let mut toks: Vec<Token> = Vec::new();
    // Inside a string-literal remnant (delimiters kept by the lexer, contents
    // blanked); spans lines for multi-line strings.
    let mut in_string = false;

    for (line, l) in lexed.lines.iter().enumerate() {
        let chars: Vec<char> = l.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if in_string {
                if c == '"' {
                    in_string = false;
                }
                i += 1;
                continue;
            }
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c == '"' {
                in_string = true;
                i += 1;
                continue;
            }
            if c == '\'' {
                // Lifetime (`'a`) or a blanked char-literal remnant (`' '`).
                let mut j = i + 1;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                if j > i + 1 && chars.get(j) != Some(&'\'') {
                    toks.push(Token {
                        tok: Tok::Lifetime(chars[i + 1..j].iter().collect()),
                        line,
                    });
                    i = j;
                } else {
                    // Char remnant: skip through the closing quote (the lexer
                    // keeps both quotes on one line).
                    let close = chars[i + 1..].iter().position(|&c| c == '\'');
                    i = match close {
                        Some(off) => i + 1 + off + 1,
                        None => chars.len(),
                    };
                }
                continue;
            }
            if is_ident_start(c) || c.is_ascii_digit() {
                // Raw identifier: `r#type` is ONE word (keyword-proof).
                let mut j = i;
                if c == 'r'
                    && chars.get(i + 1) == Some(&'#')
                    && chars
                        .get(i + 2)
                        .copied()
                        .map(is_ident_start)
                        .unwrap_or(false)
                {
                    j = i + 2;
                }
                let start = j;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                let mut w = String::new();
                if start != i {
                    w.push_str("r#");
                }
                w.extend(&chars[start..j]);
                toks.push(Token {
                    tok: Tok::Word(w),
                    line,
                });
                i = j;
                continue;
            }
            let tok = match c {
                '(' => Tok::Open(Delim::Paren),
                ')' => Tok::Close(Delim::Paren),
                '[' => Tok::Open(Delim::Bracket),
                ']' => Tok::Close(Delim::Bracket),
                '{' => Tok::Open(Delim::Brace),
                '}' => Tok::Close(Delim::Brace),
                other => Tok::Punct(other),
            };
            toks.push(Token { tok, line });
            i += 1;
        }
    }

    // Pair delimiters with a per-kind-tolerant stack: a close only pairs with
    // a matching open; mismatched input degrades to `None`, never panics.
    let mut pair = vec![None; toks.len()];
    let mut stack: Vec<(usize, Delim)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.tok {
            Tok::Open(d) => stack.push((i, d)),
            Tok::Close(d) => {
                if let Some(&(open, od)) = stack.last() {
                    if od == d {
                        stack.pop();
                        pair[open] = Some(i);
                        pair[i] = Some(open);
                    }
                }
            }
            _ => {}
        }
    }

    TokenFile { toks, pair }
}

/// Convenience: lex + tokenize a source string.
pub fn tokenize_source(source: &str) -> TokenFile {
    tokenize(&crate::lexer::lex(source))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(t: &TokenFile) -> Vec<String> {
        t.toks
            .iter()
            .filter_map(|t| t.tok.word().map(str::to_string))
            .collect()
    }

    #[test]
    fn basic_stream_with_lines() {
        let t = tokenize_source("fn main() {\n    let x = 1;\n}\n");
        assert_eq!(words(&t), ["fn", "main", "let", "x", "1"]);
        // The `let` is on line 1 (0-based).
        let let_idx = t.toks.iter().position(|t| t.tok.is_word("let")).unwrap();
        assert_eq!(t.line(let_idx), 1);
    }

    #[test]
    fn shift_right_is_two_gt_puncts() {
        // Regression: `>>` must not be one token, or nested generics like
        // `Vec<Vec<u8>>` could never be closed one level at a time.
        let t = tokenize_source("let x: Vec<Vec<u8>> = a >> 2;");
        let gts = t.toks.iter().filter(|t| t.tok.is_punct('>')).count();
        assert_eq!(gts, 4, "two generic closers + two shift chars");
        assert!(t.toks.iter().all(|t| !t.tok.is_word(">>")));
    }

    #[test]
    fn raw_identifiers_are_single_keyword_proof_words() {
        // Regression: `r#type` must be ONE word and must not equal `type`;
        // `r#fn` must never trigger keyword handling.
        let t = tokenize_source("let r#type = 1; fn r#fn() {}");
        let w = words(&t);
        assert!(w.contains(&"r#type".to_string()), "{w:?}");
        assert!(w.contains(&"r#fn".to_string()), "{w:?}");
        assert!(!w.contains(&"type".to_string()), "{w:?}");
    }

    #[test]
    fn raw_string_remnants_emit_no_phantom_tokens() {
        // `r#"..."#` survives the lexer as `r#"   "#`; the `r`/`#` prefix and
        // the quotes must not yield delimiter or brace tokens.
        let t = tokenize_source(r##"let s = r#"{ not a brace }"#; done();"##);
        assert!(
            !t.toks
                .iter()
                .any(|t| matches!(t.tok, Tok::Open(Delim::Brace) | Tok::Close(Delim::Brace))),
            "blanked raw-string contents must not produce braces"
        );
        assert!(words(&t).contains(&"done".to_string()));
    }

    #[test]
    fn delimiters_pair_across_lines_and_nesting() {
        let t = tokenize_source("fn f(a: [u8; 4]) {\n    g(h[1], (2, 3));\n}\n");
        for (i, tok) in t.toks.iter().enumerate() {
            if let Tok::Open(d) = tok.tok {
                let j = t.match_of(i).expect("every open pairs");
                assert_eq!(t.get(j), Some(&Tok::Close(d)));
                assert!(j > i);
                assert_eq!(t.match_of(j), Some(i));
            }
        }
    }

    #[test]
    fn unbalanced_input_degrades_to_none() {
        let t = tokenize_source("fn f( {");
        assert!(t
            .toks
            .iter()
            .enumerate()
            .all(|(i, _)| t.match_of(i).is_none()));
    }

    #[test]
    fn lifetimes_and_char_remnants() {
        let t = tokenize_source("fn f<'a>(x: &'a str) { let c = '{'; }");
        assert!(t
            .toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Lifetime(l) if l == "a")));
        // The blanked `'{'` must not produce a brace token: exactly the fn
        // body's pair remains.
        let braces = t
            .toks
            .iter()
            .filter(|t| matches!(t.tok, Tok::Open(Delim::Brace)))
            .count();
        assert_eq!(braces, 1);
    }

    #[test]
    fn multi_line_string_remnants_are_consumed_statefully() {
        let t = tokenize_source("let s = \"one {\nunsafe \" ; after();");
        assert!(!t.toks.iter().any(|t| t.tok.is_word("unsafe")));
        assert!(words(&t).contains(&"after".to_string()));
    }

    #[test]
    fn text_rendering_is_compact() {
        let t = tokenize_source("pub fn f(x: &Guard) -> *mut u8");
        assert_eq!(t.text(0, t.toks.len()), "pub fn f(x:&Guard)->*mut u8");
    }
}
