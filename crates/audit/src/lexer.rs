//! A small hand-rolled Rust *line lexer*.
//!
//! The audit rules do not need a full token tree — they need to know, for
//! every source line, (a) what the line's code looks like **with comments
//! removed and literal contents blanked**, and (b) what comment text the line
//! carries. Everything else (finding `unsafe`, matching parentheses, counting
//! braces) is plain string scanning over the sanitized code, which is immune
//! to `unsafe` appearing inside a string or a doc comment.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments
//! (`/* /* */ */`, `/** .. */`), string literals with escapes, raw strings
//! with up to 255 `#`s (`r#"..."#`, `br##"..."##`), byte strings, char and
//! byte-char literals (escapes included), and lifetimes (`'a` is *not* a char
//! literal). Literal contents are replaced by spaces but the delimiters are
//! kept, so column positions and paren/brace balance survive sanitization.

/// One source line after lexing.
#[derive(Debug, Clone, Default)]
pub struct LexedLine {
    /// The line with comments stripped and string/char contents blanked.
    pub code: String,
    /// Concatenated text of every comment that touches this line (including
    /// the interior lines of a block comment).
    pub comment: String,
}

/// A whole file after lexing.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    pub lines: Vec<LexedLine>,
}

impl LexedFile {
    /// Sanitized code of line `i` (0-based), or `""` past the end.
    pub fn code(&self, i: usize) -> &str {
        self.lines.get(i).map(|l| l.code.as_str()).unwrap_or("")
    }

    /// Comment text of line `i` (0-based), or `""` past the end.
    pub fn comment(&self, i: usize) -> &str {
        self.lines.get(i).map(|l| l.comment.as_str()).unwrap_or("")
    }
}

/// Lexer state that can span line boundaries.
enum Mode {
    Code,
    /// Inside a block comment at the given nesting depth.
    Block(u32),
    /// Inside a regular string literal.
    Str,
    /// Inside a raw string literal closed by `"` followed by `hashes` `#`s.
    RawStr {
        hashes: u32,
    },
}

/// Lex `source` into per-line sanitized code + comment text.
pub fn lex(source: &str) -> LexedFile {
    let mut out = LexedFile::default();
    let mut mode = Mode::Code;

    for raw_line in source.split('\n') {
        let bytes: Vec<char> = raw_line.chars().collect();
        let mut code = String::with_capacity(raw_line.len());
        let mut comment = String::new();
        let mut i = 0usize;

        while i < bytes.len() {
            match mode {
                Mode::Block(depth) => {
                    if starts(&bytes, i, "*/") {
                        comment.push_str("*/");
                        i += 2;
                        if depth == 1 {
                            mode = Mode::Code;
                        } else {
                            mode = Mode::Block(depth - 1);
                        }
                    } else if starts(&bytes, i, "/*") {
                        comment.push_str("/*");
                        i += 2;
                        mode = Mode::Block(depth + 1);
                    } else {
                        comment.push(bytes[i]);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if bytes[i] == '\\' {
                        // Escape: blank the escape and what it escapes. A
                        // trailing `\` continues the string on the next line.
                        code.push(' ');
                        if i + 1 < bytes.len() {
                            code.push(' ');
                        }
                        i += 2;
                    } else if bytes[i] == '"' {
                        code.push('"');
                        i += 1;
                        mode = Mode::Code;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr { hashes } => {
                    if bytes[i] == '"' && has_hashes(&bytes, i + 1, hashes) {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        i += 1 + hashes as usize;
                        mode = Mode::Code;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Code => {
                    let c = bytes[i];
                    if starts(&bytes, i, "//") {
                        // Line comment: the rest of the line is comment text.
                        comment.push_str(&bytes[i..].iter().collect::<String>());
                        i = bytes.len();
                    } else if starts(&bytes, i, "/*") {
                        comment.push_str("/*");
                        i += 2;
                        mode = Mode::Block(1);
                    } else if c == '"' {
                        code.push('"');
                        i += 1;
                        mode = Mode::Str;
                    } else if let Some(h) = raw_string_start(&bytes, i) {
                        // r"..." / r#"..."# / br#"..."# — emit the prefix.
                        let prefix_len = raw_prefix_len(&bytes, i, h);
                        for _ in 0..prefix_len {
                            code.push(bytes[i]);
                            i += 1;
                        }
                        mode = Mode::RawStr { hashes: h };
                    } else if c == '\'' && !prev_is_ident(&code) {
                        // Char literal or lifetime. `'a` (lifetime) keeps only
                        // the quote; `'a'`, `'\n'`, `'\u{1F600}'` are blanked.
                        if let Some(end) = char_literal_end(&bytes, i) {
                            code.push('\'');
                            for _ in i + 1..end {
                                code.push(' ');
                            }
                            code.push('\'');
                            i = end + 1;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }

        // A line comment never spans lines; block comments / strings keep
        // their mode for the next line.
        out.lines.push(LexedLine { code, comment });
    }
    out
}

fn starts(bytes: &[char], i: usize, pat: &str) -> bool {
    let pat: Vec<char> = pat.chars().collect();
    bytes.len() >= i + pat.len() && bytes[i..i + pat.len()] == pat[..]
}

fn has_hashes(bytes: &[char], i: usize, n: u32) -> bool {
    let n = n as usize;
    bytes.len() >= i + n && bytes[i..i + n].iter().all(|&c| c == '#')
}

/// If a raw-string literal (`r"`, `r#"`, `br##"`, ...) starts at `i`, return
/// the number of `#`s; the previous character must not be part of an
/// identifier (so `var` ending in `r` followed by `"x"` is not a raw string).
fn raw_string_start(bytes: &[char], i: usize) -> Option<u32> {
    if i > 0 && is_ident_char(bytes[i - 1]) {
        return None;
    }
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') && hashes < 255 {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Length of the `r##"`-style prefix (including the opening quote).
fn raw_prefix_len(bytes: &[char], i: usize, hashes: u32) -> usize {
    let b = usize::from(bytes.get(i) == Some(&'b'));
    b + 1 + hashes as usize + 1
}

/// If a char (or byte-char) literal starts at the `'` at position `i`, return
/// the index of its closing `'`. Returns `None` for lifetimes.
fn char_literal_end(bytes: &[char], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == '\\' {
        // Escaped char: position i+2 is the escape body's first character
        // (which may itself be `'` as in `'\''`), so the closing quote is the
        // first `'` at or after i+3 (covers `\n`, `\\`, `\x41`, `\u{..}`).
        let mut j = i + 3;
        while j < bytes.len() {
            if bytes[j] == '\'' {
                return Some(j);
            }
            j += 1;
        }
        None
    } else if next == '\'' {
        // `''` is not a valid literal; treat as two quotes.
        None
    } else if bytes.get(i + 2) == Some(&'\'') {
        Some(i + 2)
    } else {
        // `'static`, `'a` — a lifetime.
        None
    }
}

fn prev_is_ident(code: &str) -> bool {
    // `b'x'` byte-char: the `b` prefix is an identifier char but the literal
    // is still a char literal; only suppress for longer identifiers.
    let mut it = code.chars().rev();
    match it.next() {
        Some(c) if is_ident_char(c) => c != 'b' || it.next().map(is_ident_char).unwrap_or(false),
        _ => false,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_stripped() {
        let f = lex("let x = 1; // unsafe in a comment");
        assert_eq!(f.code(0).trim_end(), "let x = 1;");
        assert!(f.comment(0).contains("unsafe in a comment"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let f = lex("/// # Safety\n/// must be valid\npub unsafe fn f() {}");
        assert!(f.comment(0).contains("# Safety"));
        assert!(f.code(0).trim().is_empty());
        assert!(f.code(2).contains("unsafe fn f"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = lex("a /* one /* two */ still */ b\nc /* open\nunsafe { }\n*/ d");
        assert_eq!(f.code(0).replace(' ', ""), "ab");
        assert!(f.comment(0).contains("two"));
        assert_eq!(f.code(1).trim_end(), "c");
        assert!(
            f.code(2).trim().is_empty(),
            "code inside comment is blanked"
        );
        assert!(f.comment(2).contains("unsafe"));
        assert_eq!(f.code(3).replace(' ', ""), "d");
    }

    #[test]
    fn string_contents_are_blanked_but_structure_kept() {
        let f = lex(r#"call("unsafe { } // not a comment", x);"#);
        assert!(!f.code(0).contains("unsafe"));
        assert!(f.comment(0).is_empty());
        assert!(f.code(0).contains("call(\""));
        assert!(f.code(0).ends_with(", x);"));
    }

    #[test]
    fn string_escapes_do_not_end_the_string() {
        let f = lex(r#"let s = "a\"unsafe\""; let t = 2;"#);
        assert!(!f.code(0).contains("unsafe"));
        assert!(f.code(0).contains("let t = 2;"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let f = lex(r##"let s = r#"unsafe { "quoted" }"#; tail();"##);
        assert!(!f.code(0).contains("unsafe"));
        assert!(f.code(0).contains("tail();"));
    }

    #[test]
    fn multi_line_strings_blank_every_line() {
        let f = lex("let s = \"line one\nunsafe {\n}\"; after();");
        assert!(!f.code(1).contains("unsafe"));
        assert!(f.code(2).contains("after();"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let f = lex("let c = '{'; let l: &'static str = x; let e = '\\'';");
        // The brace inside the char literal must be blanked...
        assert!(!f.code(0).contains('{'));
        // ...but the lifetime must not swallow `static str`.
        assert!(f.code(0).contains("static str"));
        assert!(f.code(0).contains("let e ="));
    }

    #[test]
    fn byte_char_and_byte_string() {
        let f = lex(r#"let a = b'{'; let b = b"unsafe"; done();"#);
        assert!(!f.code(0).contains('{'));
        assert!(!f.code(0).contains("unsafe"));
        assert!(f.code(0).contains("done();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let f = lex(r#"let var = "x"; more();"#);
        assert!(f.code(0).contains("more();"));
    }

    #[test]
    fn trailing_backslash_continues_string() {
        let f = lex("let s = \"abc\\\ndef\"; after();");
        assert!(f.code(1).contains("after();"));
        assert!(!f.code(1).contains("def"));
    }
}
