//! Pass 2: cross-file rules over the workspace inventory.
//!
//! Three rules (see `docs/CORRECTNESS.md` for the contract):
//!
//! 6. **acquire-release-pairing** — an atomic field with a `Release`/`AcqRel`
//!    store-side op but no `Acquire`-side load anywhere in the workspace (or
//!    the converse) is flagged at its declaration; a `Relaxed` RMW on an
//!    otherwise-ordered field is flagged at the site unless it carries an
//!    `// ORDERING:` justification.
//! 7. **guard-escape** — a non-test plain-`pub` fn in `crates/core` or
//!    `crates/epoch` returning `*const`/`*mut` must take a `&Guard`-typed
//!    parameter (any `…Guard` type name) or carry `// ESCAPE:` with a
//!    justification: raw pointers may not outlive the guard that makes them
//!    safe to dereference.
//! 8. **no-panic-hot-path** — a fn tagged `// HOT:` must not contain
//!    `panic!`/`assert!`/`todo!`/`unimplemented!`/`unreachable!`,
//!    `.unwrap()`/`.expect()`, or bare slice indexing; `debug_assert!` is
//!    allowed (compiled out of release hot paths).

use crate::inventory::{AnalyzedFile, AtomicOp, Inventory, OpKind};
use crate::rules::{has_annotation, FileKind, Finding, Rule};
use crate::tokens::{Delim, Tok};

/// Run all cross-file rules.
pub fn check_crossfile(files: &[AnalyzedFile], inv: &Inventory) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_pairing(inv, &mut findings);
    check_guard_escape(files, &mut findings);
    check_no_panic_hot_path(files, &mut findings);
    findings
}

// ---------------------------------------------------------------------------
// Rule 6: acquire-release pairing
// ---------------------------------------------------------------------------

fn check_pairing(inv: &Inventory, findings: &mut Vec<Finding>) {
    // Pool op sites by field name (documented workspace-wide heuristic).
    let mut seen: Vec<&str> = Vec::new();
    for decl in &inv.fields {
        if seen.contains(&decl.name.as_str()) {
            continue;
        }
        seen.push(&decl.name);
        // Test-scope ops are excluded wholesale: a test harness's SeqCst
        // counter must not mark a production field of the same name as
        // "ordered" (name pooling would otherwise flag its Relaxed RMWs).
        let ops: Vec<&AtomicOp> = inv
            .ops
            .iter()
            .filter(|o| !o.in_test && o.field.as_deref() == Some(decl.name.as_str()))
            .collect();
        if ops.is_empty() {
            continue;
        }
        let release_side = ops
            .iter()
            .any(|o| matches!(o.kind, OpKind::Store | OpKind::Rmw) && o.ord.release_side());
        let acquire_side = ops
            .iter()
            .any(|o| matches!(o.kind, OpKind::Load | OpKind::Rmw) && o.ord.acquire_side());
        match (release_side, acquire_side) {
            (true, false) => findings.push(Finding::new(
                &decl.file,
                decl.line,
                Rule::AcquireReleasePairing,
                format!(
                    "atomic field `{}` has a Release-side store but no Acquire-side \
                     load anywhere in the workspace",
                    decl.name
                ),
            )),
            (false, true) => findings.push(Finding::new(
                &decl.file,
                decl.line,
                Rule::AcquireReleasePairing,
                format!(
                    "atomic field `{}` has an Acquire-side load but no Release-side \
                     store anywhere in the workspace",
                    decl.name
                ),
            )),
            _ => {}
        }
        // Mixed-ordering hazard: a Relaxed RMW on a field other sites order.
        if release_side || acquire_side {
            for o in &ops {
                if o.kind == OpKind::Rmw && o.ord.relaxed_only() && !o.annotated {
                    findings.push(Finding::new(
                        &o.file,
                        o.line,
                        Rule::AcquireReleasePairing,
                        format!(
                            "Relaxed `{}` on ordered atomic field `{}` without an \
                             `// ORDERING:` justification",
                            o.method, decl.name
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 7: guard escape
// ---------------------------------------------------------------------------

/// Crates whose public raw-pointer returns must be guard-bound.
const GUARDED_CRATES: &[&str] = &["crates/core/", "crates/epoch/"];

fn check_guard_escape(files: &[AnalyzedFile], findings: &mut Vec<Finding>) {
    for f in files {
        if !GUARDED_CRATES.iter().any(|c| f.path.starts_with(c)) || f.kind == FileKind::Test {
            continue;
        }
        let p = &f.parsed;
        for func in &p.fns {
            if func.is_test || func.vis != crate::parse::Vis::Pub {
                continue;
            }
            if !returns_raw_ptr(p, func.ret) {
                continue;
            }
            let has_guard_param = p.toks.toks
                [func.params.0.min(p.toks.toks.len())..func.params.1.min(p.toks.toks.len())]
                .iter()
                .any(|t| matches!(&t.tok, Tok::Word(w) if w.ends_with("Guard")));
            if has_guard_param || has_annotation(&p.lexed, func.decl_line, &["ESCAPE:"]) {
                continue;
            }
            findings.push(Finding::new(
                &f.path,
                func.decl_line + 1,
                Rule::GuardEscape,
                format!(
                    "pub fn `{}` returns a raw pointer but takes no `&Guard`-typed \
                     parameter and carries no `// ESCAPE:` justification",
                    func.name
                ),
            ));
        }
    }
}

/// Does the return-type token range contain `*const` / `*mut`?
fn returns_raw_ptr(p: &crate::parse::ParsedFile, ret: (usize, usize)) -> bool {
    let toks = &p.toks.toks;
    let (a, b) = (ret.0.min(toks.len()), ret.1.min(toks.len()));
    (a..b).any(|i| {
        matches!(toks[i].tok, Tok::Punct('*'))
            && matches!(toks.get(i + 1), Some(t) if t.tok.is_word("const") || t.tok.is_word("mut"))
    })
}

// ---------------------------------------------------------------------------
// Rule 8: no panics on hot paths
// ---------------------------------------------------------------------------

/// Macro names that unwind (or abort) at runtime.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "todo",
    "unimplemented",
    "unreachable",
];

/// Keywords that may directly precede `[` without it being an index
/// expression: `let [a, b] = ...` destructures, `return [x]` / `in [..]`
/// build arrays, `mut`/`ref` appear in slice patterns.
const KEYWORDS_BEFORE_BRACKET: &[&str] = &[
    "let", "mut", "ref", "in", "return", "else", "match", "if", "while", "move", "box", "yield",
];

fn check_no_panic_hot_path(files: &[AnalyzedFile], findings: &mut Vec<Finding>) {
    for f in files {
        let p = &f.parsed;
        for func in &p.fns {
            let Some((b0, b1)) = func.body else { continue };
            if !has_annotation(&p.lexed, func.decl_line, &["HOT:"]) {
                continue;
            }
            let toks = &p.toks;
            let mut i = b0;
            let end = b1.min(toks.toks.len());
            let mut flag = |line0: usize, what: String| {
                findings.push(Finding::new(
                    &f.path,
                    line0 + 1,
                    Rule::NoPanicHotPath,
                    format!("{what} in hot-path fn `{}` (tagged `// HOT:`)", func.name),
                ));
            };
            while i < end {
                match toks.get(i) {
                    Some(Tok::Word(w)) if matches!(toks.get(i + 1), Some(Tok::Punct('!'))) => {
                        if w.starts_with("debug_assert") {
                            // Allowed: compiled out of release builds. Skip
                            // its argument tree (indexing inside is fine).
                            if matches!(toks.get(i + 2), Some(Tok::Open(_))) {
                                i = toks.match_of(i + 2).map(|c| c + 1).unwrap_or(i + 2);
                                continue;
                            }
                        } else if PANIC_MACROS.contains(&w.as_str()) {
                            flag(toks.line(i), format!("`{w}!`"));
                        }
                        i += 1;
                    }
                    Some(Tok::Punct('.'))
                        if matches!(toks.get(i + 1), Some(Tok::Word(w)) if w == "unwrap" || w == "expect")
                            && matches!(toks.get(i + 2), Some(Tok::Open(Delim::Paren))) =>
                    {
                        let w = toks.get(i + 1).and_then(Tok::word).unwrap_or("unwrap");
                        flag(toks.line(i + 1), format!("`.{w}()`"));
                        i += 2;
                    }
                    Some(Tok::Open(Delim::Bracket)) => {
                        // Bare indexing: `expr[...]` — previous token ends an
                        // expression. `vec![..]` is excluded (prev is `!`),
                        // and a keyword before `[` starts an array/slice
                        // pattern or expression (`let [a, b] = ...`), not an
                        // index.
                        let indexing = i > b0
                            && (matches!(
                                toks.get(i - 1),
                                Some(Tok::Word(w)) if !KEYWORDS_BEFORE_BRACKET.contains(&w.as_str())
                            ) || matches!(
                                toks.get(i - 1),
                                Some(Tok::Close(Delim::Bracket)) | Some(Tok::Close(Delim::Paren))
                            ));
                        if indexing {
                            flag(toks.line(i), "bare slice indexing".to_string());
                        }
                        i += 1;
                    }
                    None => break,
                    _ => i += 1,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;

    fn analyze(path: &str, src: &str) -> Vec<Finding> {
        let file = AnalyzedFile {
            path: path.to_string(),
            kind: FileKind::Normal,
            parsed: parse_source(src, false),
        };
        let files = [file];
        let inv = crate::inventory::build(&files);
        check_crossfile(&files, &inv)
    }

    fn analyze_many(files: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<AnalyzedFile> = files
            .iter()
            .map(|(path, src)| AnalyzedFile {
                path: path.to_string(),
                kind: FileKind::Normal,
                parsed: parse_source(src, false),
            })
            .collect();
        let inv = crate::inventory::build(&files);
        check_crossfile(&files, &inv)
    }

    // --- rule 6 -----------------------------------------------------------

    #[test]
    fn one_sided_release_store_is_flagged() {
        let f = analyze(
            "crates/x/src/lib.rs",
            "struct R { flag: AtomicU64 }\nimpl R {\n    fn set(&self) { self.flag.store(1, Ordering::Release); }\n    fn get(&self) -> u64 { self.flag.load(Ordering::Relaxed) }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::AcquireReleasePairing);
        assert!(f[0].message.contains("no Acquire-side load"), "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn one_sided_acquire_load_is_flagged() {
        let f = analyze(
            "crates/x/src/lib.rs",
            "struct R { flag: AtomicU64 }\nimpl R {\n    fn set(&self) { self.flag.store(1, Ordering::Relaxed); }\n    fn get(&self) -> u64 { self.flag.load(Ordering::Acquire) }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no Release-side store"), "{f:?}");
    }

    #[test]
    fn paired_field_is_clean_even_across_files() {
        let f = analyze_many(&[
            (
                "crates/x/src/writer.rs",
                "struct W { flag: AtomicU64 }\nimpl W { fn set(&self) { self.flag.store(1, Ordering::Release); } }\n",
            ),
            (
                "crates/x/src/reader.rs",
                "fn watch(w: &W) -> u64 { w.flag.load(Ordering::Acquire) }\n",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn all_relaxed_counter_is_not_flagged() {
        let f = analyze(
            "crates/x/src/lib.rs",
            "struct C { hits: AtomicU64 }\nimpl C {\n    fn bump(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n    fn read(&self) -> u64 { self.hits.load(Ordering::Relaxed) }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_file_ops_do_not_poison_name_pooling() {
        // A test harness's SeqCst counter named `live` must not mark a
        // production field of the same name as "ordered".
        let prod = AnalyzedFile {
            path: "crates/x/src/lib.rs".to_string(),
            kind: FileKind::Normal,
            parsed: parse_source(
                "struct T { live: AtomicUsize }\nimpl T {\n    fn ins(&self) { self.live.fetch_add(1, Ordering::Relaxed); }\n    fn len(&self) -> usize { self.live.load(Ordering::Relaxed) }\n}\n",
                false,
            ),
        };
        let test = AnalyzedFile {
            path: "crates/x/tests/drop_count.rs".to_string(),
            kind: FileKind::Test,
            parsed: parse_source(
                "fn track(live: &AtomicUsize) { live.fetch_add(1, Ordering::SeqCst); }\nfn check(live: &AtomicUsize) -> usize { live.load(Ordering::SeqCst) }\n",
                true,
            ),
        };
        let files = [prod, test];
        let inv = crate::inventory::build(&files);
        let f = check_crossfile(&files, &inv);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn relaxed_rmw_on_ordered_field_needs_justification() {
        let src = "struct C { refs: AtomicU64 }\nimpl C {\n    fn acquire(&self) -> u64 { self.refs.load(Ordering::Acquire) }\n    fn publish(&self) { self.refs.store(0, Ordering::Release); }\n    fn bump(&self) { self.refs.fetch_add(1, Ordering::Relaxed); }\n}\n";
        let f = analyze("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Relaxed `fetch_add`"), "{f:?}");
        assert_eq!(f[0].line, 5);

        let justified = src.replace(
            "    fn bump(&self) {",
            "    // ORDERING: counter only; the Release store publishes.\n    fn bump(&self) {",
        );
        // Annotation must be at the site, so put it on the op line instead.
        let justified = justified.replace(
            "self.refs.fetch_add(1, Ordering::Relaxed);",
            "self.refs.fetch_add(1, Ordering::Relaxed); // ORDERING: counter only.",
        );
        assert!(analyze("crates/x/src/lib.rs", &justified).is_empty());
    }

    #[test]
    fn cas_with_acqrel_success_pairs_both_sides() {
        let f = analyze(
            "crates/x/src/lib.rs",
            "struct L { cell: AtomicU64 }\nimpl L {\n    fn lock(&self) { let _ = self.cell.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire); }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn forwarded_order_param_satisfies_pairing() {
        let f = analyze(
            "crates/x/src/lib.rs",
            "struct P { lo: AtomicU64 }\nimpl P {\n    fn load(&self, order: Ordering) -> u64 { self.lo.load(order) }\n    fn store(&self, v: u64, order: Ordering) { self.lo.store(v, order) }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    // --- rule 7 -----------------------------------------------------------

    #[test]
    fn pub_raw_ptr_return_without_guard_is_flagged() {
        let src = "impl Index {\n    pub fn next_ptr(&self) -> *mut Index {\n        self.next.load(Ordering::Acquire)\n    }\n    pub fn len(&self) -> usize { 0 }\n}\nstruct Index { next: AtomicPtr<Index> }\nfn pair(i: &Index) { i.next.store(p, Ordering::Release); }\n";
        let f = analyze("crates/core/src/index.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::GuardEscape);
        assert!(f[0].message.contains("next_ptr"));
    }

    #[test]
    fn guard_param_or_escape_annotation_clears_it() {
        let with_guard = "pub fn next_ptr<'g>(&self, _g: &'g EnterGuard) -> *mut Index { x }\n";
        assert!(analyze("crates/core/src/index.rs", with_guard).is_empty());
        let with_escape = "// ESCAPE: value copy, never dereferenced without a guard.\npub fn ptr(self) -> *mut u8 { x }\n";
        assert!(analyze("crates/core/src/index.rs", with_escape).is_empty());
    }

    #[test]
    fn rule_is_scoped_to_core_and_epoch_non_test() {
        let src = "pub fn raw() -> *const u8 { x }\n";
        assert!(!analyze("crates/core/src/x.rs", src).is_empty());
        assert!(!analyze("crates/epoch/src/lib.rs", src).is_empty());
        assert!(analyze("crates/net/src/x.rs", src).is_empty());
        // Private and pub(crate) fns are exempt.
        assert!(analyze("crates/core/src/x.rs", "fn raw() -> *const u8 { x }\n").is_empty());
        assert!(analyze(
            "crates/core/src/x.rs",
            "pub(crate) fn raw() -> *const u8 { x }\n"
        )
        .is_empty());
        // Test scope is exempt.
        assert!(analyze(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    pub fn raw() -> *const u8 { x }\n}\n"
        )
        .is_empty());
    }

    // --- rule 8 -----------------------------------------------------------

    #[test]
    fn untagged_fn_may_panic() {
        let f = analyze(
            "crates/x/src/lib.rs",
            "fn cold(v: &[u8]) -> u8 { v[0] + v.first().copied().unwrap() }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn hot_fn_rejects_unwrap_expect_and_panics() {
        let src = "// HOT: probe loop.\nfn probe(v: &[u8]) -> u8 {\n    let x = v.first().unwrap();\n    let y = v.last().expect(\"non-empty\");\n    if *x == 0 { panic!(\"zero\"); }\n    assert!(*y > 0);\n    todo!()\n}\n";
        let f = analyze("crates/x/src/lib.rs", src);
        let msgs: Vec<&str> = f.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(f.len(), 5, "{msgs:?}");
        assert!(msgs.iter().all(|m| m.contains("hot-path fn `probe`")));
        assert!(msgs.iter().any(|m| m.contains("`.unwrap()`")));
        assert!(msgs.iter().any(|m| m.contains("`.expect()`")));
        assert!(msgs.iter().any(|m| m.contains("`panic!`")));
        assert!(msgs.iter().any(|m| m.contains("`assert!`")));
        assert!(msgs.iter().any(|m| m.contains("`todo!`")));
    }

    #[test]
    fn hot_fn_rejects_bare_indexing_but_allows_debug_assert() {
        let src = "// HOT: decode path.\nfn decode(buf: &[u8]) -> u8 {\n    debug_assert!(buf[0] > 0);\n    buf[1]\n}\n";
        let f = analyze("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("bare slice indexing"));
        assert_eq!(f[0].line, 4, "the debug_assert! index is allowed");
    }

    #[test]
    fn hot_fn_clean_body_passes() {
        let src = "// HOT: steady-state submit.\nfn submit(v: &[u8]) -> Option<u8> {\n    let head = v.first()?;\n    v.get(1).map(|b| b.wrapping_add(*head))\n}\n";
        assert!(analyze("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn array_types_and_macro_brackets_are_not_indexing() {
        let src = "// HOT: shuffles.\nfn f() -> [u8; 2] {\n    let v: Vec<[u8; 2]> = vec![[0, 0]];\n    [0, 1]\n}\n";
        assert!(analyze("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn slice_patterns_are_not_indexing() {
        // `let [..] = ...` destructures a fixed-size array (panic-free);
        // only `expr[...]` is an index.
        let src = "// HOT: header split.\nfn f(h: &[u8; 4]) -> u8 {\n    let [a, _, _, b] = *h;\n    if let [x, ..] = h.as_slice() { return *x; }\n    a.wrapping_add(b)\n}\n";
        let f = analyze("crates/x/src/lib.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }
}
