//! # dlht-audit
//!
//! A dependency-free, source-level static analyzer that machine-checks the
//! repository's `unsafe`/atomics discipline (see `docs/CORRECTNESS.md`).
//!
//! **Per-file rules** (pass over each file independently):
//!
//! * every `unsafe` site carries a `// SAFETY:` justification,
//! * every atomic operation names its `Ordering` at the call site,
//! * `SeqCst` only appears with an `// ORDERING:` rationale,
//! * `transmute` / `static mut` / `#[allow]` only with an `// AUDIT:` tag,
//! * every crate root carries the agreed lint header.
//!
//! **Cross-file rules** (two-pass: [`inventory`] then [`crossfile`]):
//!
//! * every atomic field with a `Release`-side store has an `Acquire`-side
//!   load somewhere in the workspace (and the converse),
//! * a plain-`pub` fn in `core`/`epoch` returning `*const`/`*mut` takes a
//!   `&Guard`-typed parameter or carries `// ESCAPE:`,
//! * functions tagged `// HOT:` contain no panics, `unwrap`/`expect`, or
//!   bare slice indexing.
//!
//! The pipeline is [`lexer`] (sanitized lines) → [`tokens`] (token stream
//! with delimiter pairing) → [`parse`] (items, signatures, `#[cfg(test)]`
//! scoping) → rules. No `syn`: the repository builds fully offline.
//!
//! Diagnostics serialize to a schema-versioned JSON document ([`json`]) and
//! gate CI through a suppression [`baseline`] (`audit.baseline.json`): only
//! findings *not* in the baseline fail a run.
//!
//! Run it with `cargo run -p dlht-audit` from the workspace root; see
//! `main.rs` for the CLI (`--format json`, `--update-baseline`, ...).

#![forbid(unsafe_code)]

pub mod baseline;
pub mod crossfile;
pub mod inventory;
pub mod json;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod tokens;

pub use baseline::Baseline;
pub use inventory::AnalyzedFile;
pub use rules::{check_file, check_source, FileKind, Finding, Rule, Severity, ALL_RULES};

use std::path::{Path, PathBuf};

/// Directories never descended into while walking a workspace.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "benchmarks"];

/// Classify `path` (relative to the workspace root) for rule strictness.
pub fn classify(path: &Path) -> FileKind {
    let s = path.to_string_lossy().replace('\\', "/");
    if s.ends_with("src/lib.rs") {
        FileKind::CrateRoot
    } else if s
        .split('/')
        .any(|c| c == "tests" || c == "examples" || c == "benches")
    {
        FileKind::Test
    } else {
        FileKind::Normal
    }
}

/// Recursively collect every `.rs` file under `root`, skipping `SKIP_DIRS`.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Pass 1: lex, tokenize, and parse every `.rs` file under `root`. Paths are
/// reported relative to `root`, `/`-separated.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<AnalyzedFile>> {
    let mut files = Vec::new();
    for path in collect_rust_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let source = std::fs::read_to_string(&path)?;
        let kind = classify(&rel);
        files.push(AnalyzedFile {
            path: rel.to_string_lossy().replace('\\', "/"),
            kind,
            parsed: parse::parse_source(&source, kind == FileKind::Test),
        });
    }
    Ok(files)
}

/// Audit the workspace rooted at `root` with all eight rules (per-file and
/// cross-file). Returns every finding, sorted by file and line. Paths in
/// findings are reported relative to `root`.
pub fn audit_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let files = analyze_workspace(root)?;
    let mut findings = Vec::new();
    for f in &files {
        findings.extend(rules::check_parsed(&f.path, &f.parsed, f.kind));
    }
    let inv = inventory::build(&files);
    findings.extend(crossfile::check_crossfile(&files, &inv));
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(
            classify(Path::new("crates/core/src/lib.rs")),
            FileKind::CrateRoot
        );
        assert_eq!(classify(Path::new("src/lib.rs")), FileKind::CrateRoot);
        assert_eq!(
            classify(Path::new("crates/core/src/table.rs")),
            FileKind::Normal
        );
        assert_eq!(classify(Path::new("tests/zero_alloc.rs")), FileKind::Test);
        assert_eq!(
            classify(Path::new("crates/epoch/tests/drop_count.rs")),
            FileKind::Test
        );
        assert_eq!(classify(Path::new("examples/sharded.rs")), FileKind::Test);
    }
}
