//! # dlht-audit
//!
//! A dependency-free, source-level static analyzer that machine-checks the
//! repository's `unsafe`/atomics discipline (see `docs/CORRECTNESS.md`):
//!
//! * every `unsafe` site carries a `// SAFETY:` justification,
//! * every atomic operation names its `Ordering` at the call site,
//! * `SeqCst` only appears with an `// ORDERING:` rationale,
//! * `transmute` / `static mut` / `#[allow]` only with an `// AUDIT:` tag,
//! * every crate root carries the agreed lint header.
//!
//! The analyzer is built on a small hand-rolled lexer ([`lexer`]) rather than
//! `syn` — the repository builds fully offline — and is wired into CI (the
//! `audit` job) and into `cargo test` (the `workspace_clean` integration test
//! re-audits the whole workspace on every run).
//!
//! Run it directly with `cargo run -p dlht-audit` from the workspace root; it
//! exits non-zero when any finding is reported.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

pub use rules::{check_file, check_source, FileKind, Finding, Rule};

use std::path::{Path, PathBuf};

/// Directories never descended into while walking a workspace.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "benchmarks"];

/// Classify `path` (relative to the workspace root) for rule strictness.
pub fn classify(path: &Path) -> FileKind {
    let s = path.to_string_lossy().replace('\\', "/");
    if s.ends_with("src/lib.rs") {
        FileKind::CrateRoot
    } else if s
        .split('/')
        .any(|c| c == "tests" || c == "examples" || c == "benches")
    {
        FileKind::Test
    } else {
        FileKind::Normal
    }
}

/// Recursively collect every `.rs` file under `root`, skipping `SKIP_DIRS`.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Audit the workspace rooted at `root`. Returns every finding, sorted by
/// file and line. Paths in findings are reported relative to `root`.
pub fn audit_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in collect_rust_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let source = std::fs::read_to_string(&path)?;
        let lexed = lexer::lex(&source);
        findings.extend(check_file(
            &rel.to_string_lossy().replace('\\', "/"),
            &lexed,
            classify(&rel),
        ));
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(
            classify(Path::new("crates/core/src/lib.rs")),
            FileKind::CrateRoot
        );
        assert_eq!(classify(Path::new("src/lib.rs")), FileKind::CrateRoot);
        assert_eq!(
            classify(Path::new("crates/core/src/table.rs")),
            FileKind::Normal
        );
        assert_eq!(classify(Path::new("tests/zero_alloc.rs")), FileKind::Test);
        assert_eq!(
            classify(Path::new("crates/epoch/tests/drop_count.rs")),
            FileKind::Test
        );
        assert_eq!(classify(Path::new("examples/sharded.rs")), FileKind::Test);
    }
}
