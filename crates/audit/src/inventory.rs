//! Pass 1 of the two-pass audit: the workspace inventory.
//!
//! Walks every parsed file and records, workspace-wide:
//!
//! * **atomic struct fields and statics** (any type whose name starts with
//!   `Atomic`), keyed by field name;
//! * **every atomic load/store/RMW/fence site**, with the receiver field it
//!   targets (resolved as the last identifier in the field-access chain
//!   before the method, so `self.slots[i].announced.store(..)` targets
//!   `announced`) and the `Ordering`s named in its argument list;
//! * nothing else — function signatures and hot-path tags stay on the
//!   [`crate::parse::ParsedFile`]s, which pass 2 reads directly.
//!
//! The receiver resolution is deliberately name-based: two structs sharing a
//! field name pool their sites (documented in `docs/CORRECTNESS.md`). That
//! trades a little precision for zero type inference — and errs toward *not*
//! flagging, since pooled sites can only add acquire/release evidence.

use crate::parse::ParsedFile;
use crate::rules::FileKind;
use crate::tokens::{Delim, Tok};

/// One analyzed file: path (workspace-relative, `/`-separated), rule
/// strictness class, and the parsed representation.
#[derive(Debug, Clone)]
pub struct AnalyzedFile {
    pub path: String,
    pub kind: FileKind,
    pub parsed: ParsedFile,
}

/// Methods whose call sites are atomic operations (mirrors rule 2).
pub const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// What an atomic operation does to its cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Load,
    Store,
    /// Read-modify-write: `fetch_*`, `compare_exchange*`, `fetch_update`.
    Rmw,
    /// A standalone `fence` / `compiler_fence`.
    Fence,
}

/// The ordering evidence collected from one call's argument list.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrderInfo {
    pub relaxed: bool,
    pub acquire: bool,
    pub release: bool,
    pub acqrel: bool,
    pub seqcst: bool,
    /// No literal ordering named, but an `order`-named parameter is forwarded
    /// (counts as potentially satisfying either side).
    pub forwarded: bool,
}

impl OrderInfo {
    /// Any ordering information at all? Calls with none are either not
    /// atomics (`Vec::load`?) or already rule-2 findings; pass 2 skips them.
    pub fn any(&self) -> bool {
        self.relaxed || self.acquire || self.release || self.acqrel || self.seqcst || self.forwarded
    }

    /// Could this call publish (release-side)?
    pub fn release_side(&self) -> bool {
        self.release || self.acqrel || self.seqcst || self.forwarded
    }

    /// Could this call observe a publication (acquire-side)?
    pub fn acquire_side(&self) -> bool {
        self.acquire || self.acqrel || self.seqcst || self.forwarded
    }

    /// Strictly `Relaxed` only.
    pub fn relaxed_only(&self) -> bool {
        self.relaxed
            && !(self.acquire || self.release || self.acqrel || self.seqcst || self.forwarded)
    }
}

/// An atomic field or static declaration.
#[derive(Debug, Clone)]
pub struct AtomicFieldDecl {
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
    pub name: String,
    /// Declaring struct name, or `"static"`.
    pub owner: String,
    pub ty: String,
}

/// One atomic operation site.
#[derive(Debug, Clone)]
pub struct AtomicOp {
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Resolved receiver field/static name (`None` when the receiver is not a
    /// plain identifier, e.g. a method-call result).
    pub field: Option<String>,
    pub method: String,
    pub kind: OpKind,
    pub ord: OrderInfo,
    /// In test scope (test file or `#[cfg(test)]`).
    pub in_test: bool,
    /// Carries an `// ORDERING:` justification at the site.
    pub annotated: bool,
}

/// The workspace-wide atomics inventory.
#[derive(Debug, Clone, Default)]
pub struct Inventory {
    pub fields: Vec<AtomicFieldDecl>,
    pub ops: Vec<AtomicOp>,
}

/// Build the inventory over every analyzed file.
pub fn build(files: &[AnalyzedFile]) -> Inventory {
    let mut inv = Inventory::default();
    for f in files {
        collect_fields(f, &mut inv);
        collect_ops(f, &mut inv);
    }
    inv
}

fn is_atomic_type(parsed: &ParsedFile, ty: (usize, usize)) -> Option<String> {
    parsed.toks.toks[ty.0.min(parsed.toks.toks.len())..ty.1.min(parsed.toks.toks.len())]
        .iter()
        .find_map(|t| match &t.tok {
            Tok::Word(w) if w.starts_with("Atomic") => Some(w.clone()),
            _ => None,
        })
}

fn collect_fields(f: &AnalyzedFile, inv: &mut Inventory) {
    let p = &f.parsed;
    for s in &p.structs {
        if s.is_test {
            continue;
        }
        for field in &s.fields {
            if let Some(ty) = is_atomic_type(p, field.ty) {
                inv.fields.push(AtomicFieldDecl {
                    file: f.path.clone(),
                    line: field.line + 1,
                    name: field.name.clone(),
                    owner: s.name.clone(),
                    ty,
                });
            }
        }
    }
    for st in &p.statics {
        if st.is_test {
            continue;
        }
        if let Some(ty) = is_atomic_type(p, st.ty) {
            inv.fields.push(AtomicFieldDecl {
                file: f.path.clone(),
                line: st.line + 1,
                name: st.name.clone(),
                owner: "static".to_string(),
                ty,
            });
        }
    }
}

/// Extract ordering evidence from the argument tokens of one call.
fn order_info(p: &ParsedFile, args: (usize, usize)) -> OrderInfo {
    let mut o = OrderInfo::default();
    let mut saw_order_word = false;
    for t in &p.toks.toks[args.0.min(p.toks.toks.len())..args.1.min(p.toks.toks.len())] {
        if let Tok::Word(w) = &t.tok {
            match w.as_str() {
                "Relaxed" => o.relaxed = true,
                "Acquire" => o.acquire = true,
                "Release" => o.release = true,
                "AcqRel" => o.acqrel = true,
                "SeqCst" => o.seqcst = true,
                // The `Ordering::` path qualifier is not a forwarded param.
                "Ordering" => {}
                w if w.to_lowercase().contains("order") => saw_order_word = true,
                _ => {}
            }
        }
    }
    if saw_order_word && !(o.relaxed || o.acquire || o.release || o.acqrel || o.seqcst) {
        o.forwarded = true;
    }
    o
}

fn collect_ops(f: &AnalyzedFile, inv: &mut Inventory) {
    let p = &f.parsed;
    let toks = &p.toks;
    let n = toks.toks.len();
    for i in 0..n {
        // Method-call form: `. method (`
        if let Some(Tok::Punct('.')) = toks.get(i) {
            let Some(Tok::Word(m)) = toks.get(i + 1) else {
                continue;
            };
            if !ATOMIC_METHODS.contains(&m.as_str()) {
                continue;
            }
            let Some(Tok::Open(Delim::Paren)) = toks.get(i + 2) else {
                continue;
            };
            let Some(close) = toks.match_of(i + 2) else {
                continue;
            };
            let args = (i + 3, close);
            let ord = order_info(p, args);
            if !ord.any() {
                continue; // zero-arg `.load()` etc. — some other type
            }
            let field = match (i > 0).then(|| toks.get(i - 1)).flatten() {
                Some(Tok::Word(w)) if w != "self" => Some(w.clone()),
                _ => None,
            };
            let line = toks.line(i + 1);
            push_op(f, inv, line, field, m.clone(), method_kind(m), ord);
        }
        // Free-fn form: `fence (` / `compiler_fence (` not preceded by `.`.
        if let Some(Tok::Word(m)) = toks.get(i) {
            if (m == "fence" || m == "compiler_fence")
                && !matches!(
                    (i > 0).then(|| toks.get(i - 1)).flatten(),
                    Some(Tok::Punct('.'))
                )
            {
                if let Some(Tok::Open(Delim::Paren)) = toks.get(i + 1) {
                    if let Some(close) = toks.match_of(i + 1) {
                        let ord = order_info(p, (i + 2, close));
                        if ord.any() {
                            let line = toks.line(i);
                            push_op(f, inv, line, None, m.clone(), OpKind::Fence, ord);
                        }
                    }
                }
            }
        }
    }
}

fn method_kind(m: &str) -> OpKind {
    match m {
        "load" => OpKind::Load,
        "store" => OpKind::Store,
        _ => OpKind::Rmw,
    }
}

fn push_op(
    f: &AnalyzedFile,
    inv: &mut Inventory,
    line0: usize,
    field: Option<String>,
    method: String,
    kind: OpKind,
    ord: OrderInfo,
) {
    let p = &f.parsed;
    inv.ops.push(AtomicOp {
        file: f.path.clone(),
        line: line0 + 1,
        field,
        method,
        kind,
        ord,
        in_test: f.kind == FileKind::Test || p.line_in_test(line0),
        annotated: crate::rules::has_annotation(&p.lexed, line0, &["ORDERING:"]),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;

    fn analyze(src: &str) -> Inventory {
        let f = AnalyzedFile {
            path: "crates/x/src/lib.rs".into(),
            kind: FileKind::Normal,
            parsed: parse_source(src, false),
        };
        build(std::slice::from_ref(&f))
    }

    #[test]
    fn fields_and_statics_are_inventoried() {
        let inv = analyze(
            "struct Reg {\n    announced: AtomicU64,\n    name: String,\n}\nstatic EPOCH: AtomicUsize = AtomicUsize::new(0);\n",
        );
        let names: Vec<(&str, &str)> = inv
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_str()))
            .collect();
        assert_eq!(names, [("announced", "Reg"), ("EPOCH", "static")]);
        assert_eq!(inv.fields[0].ty, "AtomicU64");
        assert_eq!(inv.fields[0].line, 2);
    }

    #[test]
    fn test_scope_fields_are_skipped() {
        let inv = analyze(
            "#[cfg(test)]\nmod tests {\n    struct T { x: AtomicU64 }\n    static S: AtomicU64 = AtomicU64::new(0);\n}\n",
        );
        assert!(inv.fields.is_empty(), "{:?}", inv.fields);
    }

    #[test]
    fn receiver_chain_resolves_the_last_field() {
        let inv = analyze(
            "fn f(&self) {\n    self.slots[i].announced.store(1, Ordering::Release);\n    self.current.load(Ordering::Acquire);\n    pair().load(Ordering::Relaxed);\n}\n",
        );
        let fields: Vec<Option<&str>> = inv.ops.iter().map(|o| o.field.as_deref()).collect();
        assert_eq!(fields, [Some("announced"), Some("current"), None]);
        assert_eq!(inv.ops[0].kind, OpKind::Store);
        assert!(inv.ops[0].ord.release && !inv.ops[0].ord.acquire);
        assert_eq!(inv.ops[1].kind, OpKind::Load);
        assert!(inv.ops[1].ord.acquire);
    }

    #[test]
    fn compare_exchange_collects_both_orderings() {
        let inv = analyze(
            "fn f(x: &AtomicU64) {\n    x.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).ok();\n}\n",
        );
        assert_eq!(inv.ops.len(), 1);
        let o = &inv.ops[0];
        assert_eq!(o.kind, OpKind::Rmw);
        assert!(o.ord.acqrel && o.ord.acquire);
        assert!(o.ord.release_side() && o.ord.acquire_side());
    }

    #[test]
    fn forwarded_order_parameter_counts_for_both_sides() {
        let inv = analyze("fn load(&self, order: Ordering) -> u64 { self.lo.load(order) }\n");
        assert_eq!(inv.ops.len(), 1);
        let o = &inv.ops[0];
        assert!(o.ord.forwarded && !o.ord.relaxed);
        assert!(o.ord.release_side() && o.ord.acquire_side());
    }

    #[test]
    fn ordering_path_qualifier_is_not_a_forwarded_param() {
        let inv = analyze("fn f(x: &AtomicU64) { x.store(1, Ordering::Relaxed); }\n");
        let o = &inv.ops[0];
        assert!(o.ord.relaxed_only(), "{o:?}");
    }

    #[test]
    fn no_ordering_info_means_no_op_record() {
        // `results.load(k)` on some non-atomic type must not pollute pairing.
        let inv = analyze("fn f(r: &Cache) { r.load(key); r.store(key, val); }\n");
        assert!(inv.ops.is_empty(), "{:?}", inv.ops);
    }

    #[test]
    fn fences_and_test_scope_and_annotations() {
        let inv = analyze(
            "fn f() {\n    // ORDERING: pairs with the lock release.\n    fence(Ordering::Acquire);\n}\n#[cfg(test)]\nmod tests {\n    fn t(x: &AtomicU64) { x.load(Ordering::SeqCst); }\n}\n",
        );
        assert_eq!(inv.ops.len(), 2);
        assert_eq!(inv.ops[0].kind, OpKind::Fence);
        assert!(inv.ops[0].annotated);
        assert!(!inv.ops[0].in_test);
        assert!(inv.ops[1].in_test);
    }
}
