//! Minimal dependency-free JSON: enough to emit schema-versioned diagnostics
//! and to round-trip the baseline file. The repository builds fully offline,
//! so `serde` is not an option; the subset implemented here is exactly what
//! the two schemas use (objects, arrays, strings, unsigned integers, bools).
//!
//! # Diagnostics schema (`dlht-audit/v2`)
//!
//! ```json
//! {
//!   "schema": "dlht-audit/v2",
//!   "findings": [
//!     { "file": "crates/core/src/x.rs", "line": 3,
//!       "rule": "unsafe-needs-safety", "severity": "error",
//!       "baselined": false, "message": "..." }
//!   ]
//! }
//! ```
//!
//! `baselined` marks findings suppressed by `audit.baseline.json`; they are
//! reported but do not gate (see [`crate::baseline`]).

use crate::rules::{Finding, Rule};
use std::fmt::Write as _;

/// The diagnostics schema identifier.
pub const SCHEMA: &str = "dlht-audit/v2";

/// Escape a string for a JSON string literal.
fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize findings (with their baselined flags) as a `dlht-audit/v2`
/// document. Deterministic: key order and formatting are fixed.
pub fn findings_to_json(findings: &[(&Finding, bool)]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": ");
    escape(SCHEMA, &mut out);
    out.push_str(",\n  \"findings\": [");
    for (i, (f, baselined)) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    { \"file\": ");
        escape(&f.file, &mut out);
        let _ = write!(out, ", \"line\": {}, \"rule\": ", f.line);
        escape(f.rule.name(), &mut out);
        out.push_str(", \"severity\": ");
        escape(f.severity.name(), &mut out);
        let _ = write!(out, ", \"baselined\": {baselined}, \"message\": ");
        escape(&f.message, &mut out);
        out.push_str(" }");
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parse a `dlht-audit/v2` document back into findings + baselined flags
/// (the golden-file round-trip and any downstream tooling).
pub fn findings_from_json(text: &str) -> Result<Vec<(Finding, bool)>, String> {
    let doc = parse(text)?;
    let obj = doc.as_obj().ok_or("top level is not an object")?;
    let schema = get(obj, "schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!(
            "unsupported schema {schema:?} (expected {SCHEMA:?})"
        ));
    }
    let arr = get(obj, "findings")
        .and_then(Json::as_arr)
        .ok_or("missing \"findings\" array")?;
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        let o = item.as_obj().ok_or("finding is not an object")?;
        let rule_name = get(o, "rule")
            .and_then(Json::as_str)
            .ok_or("missing rule")?;
        let rule =
            Rule::from_name(rule_name).ok_or_else(|| format!("unknown rule {rule_name:?}"))?;
        let f = Finding::new(
            get(o, "file")
                .and_then(Json::as_str)
                .ok_or("missing file")?,
            get(o, "line")
                .and_then(Json::as_usize)
                .ok_or("missing line")?,
            rule,
            get(o, "message")
                .and_then(Json::as_str)
                .ok_or("missing message")?,
        );
        let severity = get(o, "severity")
            .and_then(Json::as_str)
            .ok_or("missing severity")?;
        if severity != f.severity.name() {
            return Err(format!(
                "severity {severity:?} does not match rule {rule_name:?}"
            ));
        }
        let baselined = get(o, "baselined").and_then(Json::as_bool).unwrap_or(false);
        out.push((f, baselined));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// A tiny JSON value + recursive-descent parser
// ---------------------------------------------------------------------------

/// A parsed JSON value (numbers are kept as `u64`: both schemas only use
/// line numbers).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) => usize::try_from(*n).ok(),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
}

/// First value for `key` in an object body.
pub fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = P { c: &chars, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.c.len() {
        return Err(format!("trailing garbage at offset {}", p.i));
    }
    Ok(v)
}

struct P<'a> {
    c: &'a [char],
    i: usize,
}

impl P<'_> {
    fn ws(&mut self) {
        while self.i < self.c.len() && self.c[self.i].is_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.c.get(self.i).copied()
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {c:?} at offset {}", self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.eat(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some('n') => self.lit("null", Json::Null),
            Some('t') => self.lit("true", Json::Bool(true)),
            Some('f') => self.lit("false", Json::Bool(false)),
            Some('"') => self.string().map(Json::Str),
            Some('[') => self.array(),
            Some('{') => self.object(),
            Some(c) if c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        let s: String = self.c[start..self.i].iter().collect();
        s.parse::<u64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some('"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('b') => out.push('\u{0008}'),
                        Some('f') => out.push('\u{000C}'),
                        Some('u') => {
                            let hex: String = self
                                .c
                                .get(self.i + 1..self.i + 5)
                                .unwrap_or(&[])
                                .iter()
                                .collect();
                            let n = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(char::from_u32(n).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.i += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat('[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some(']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat('{')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(':')?;
            self.ws();
            let v = self.value()?;
            out.push((k, v));
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some('}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    #[test]
    fn value_parser_handles_the_subset() {
        let v = parse(r#"{"a": [1, 2], "b": "x\n\"y\"", "c": true, "d": null}"#).unwrap();
        let o = v.as_obj().unwrap();
        assert_eq!(get(o, "a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(get(o, "b").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(get(o, "c").unwrap().as_bool(), Some(true));
        assert_eq!(get(o, "d"), Some(&Json::Null));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn findings_round_trip() {
        let a = Finding::new(
            "crates/core/src/x.rs",
            10,
            Rule::GuardEscape,
            "raw ptr escape",
        );
        let b = Finding::new(
            "crates/net/src/wire.rs",
            3,
            Rule::AcquireReleasePairing,
            "one-sided \"store\"\nsecond line",
        );
        assert_eq!(b.severity, Severity::Warning);
        let json = findings_to_json(&[(&a, false), (&b, true)]);
        let back = findings_from_json(&json).unwrap();
        assert_eq!(back, vec![(a, false), (b, true)]);
    }

    #[test]
    fn empty_findings_document() {
        let json = findings_to_json(&[]);
        assert!(json.contains("\"schema\": \"dlht-audit/v2\""));
        assert_eq!(findings_from_json(&json).unwrap(), vec![]);
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let bad = r#"{"schema": "dlht-audit/v1", "findings": []}"#;
        assert!(findings_from_json(bad).is_err());
    }
}
