//! `dlht_audit` — run the unsafe/atomics audit over the workspace.
//!
//! ```text
//! dlht_audit [ROOT]     # default ROOT: the current directory
//! ```
//!
//! Prints one `file:line: [rule] message` diagnostic per finding and exits
//! with status 1 if there were any (0 when clean, 2 on usage/IO errors).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: dlht_audit [ROOT]\n\nAudits every .rs file under ROOT (default: .) for the\nunsafe/atomics rules described in docs/CORRECTNESS.md.");
        return ExitCode::from(2);
    }
    let root = PathBuf::from(args.first().map(String::as_str).unwrap_or("."));
    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "dlht_audit: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }
    match dlht_audit::audit_workspace(&root) {
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                eprintln!("dlht_audit: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("dlht_audit: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("dlht_audit: IO error: {e}");
            ExitCode::from(2)
        }
    }
}
