//! `dlht_audit` — run the unsafe/atomics audit over the workspace.
//!
//! ```text
//! dlht_audit [ROOT] [--format text|json] [--baseline FILE]
//!            [--no-baseline] [--update-baseline]
//! ```
//!
//! * `ROOT` defaults to the current directory and must contain `Cargo.toml`.
//! * The baseline defaults to `ROOT/audit.baseline.json` (a missing file is
//!   an empty baseline). `--no-baseline` ignores it; `--update-baseline`
//!   rewrites it from the current findings and exits 0.
//! * **Diff-mode exit semantics**: findings matched by the baseline are
//!   reported (as `note:` lines in text mode, `"baselined": true` in JSON)
//!   but do not gate. Exit status is 1 only when *new* findings exist,
//!   0 when clean or fully baselined, 2 on usage/IO errors.
//! * `--format json` prints a schema-versioned `dlht-audit/v2` document on
//!   stdout (the CI artifact); the human summary stays on stderr.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dlht_audit [ROOT] [--format text|json] [--baseline FILE] \
[--no-baseline] [--update-baseline]

Audits every .rs file under ROOT (default: .) for the unsafe/atomics rules
described in docs/CORRECTNESS.md. Findings present in the baseline file
(default: ROOT/audit.baseline.json) are reported but do not fail the run.";

struct Options {
    root: PathBuf,
    json: bool,
    baseline_path: Option<PathBuf>,
    no_baseline: bool,
    update_baseline: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: false,
        baseline_path: None,
        no_baseline: false,
        update_baseline: false,
    };
    let mut root_set = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.json = false,
                Some("json") => opts.json = true,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--baseline" => match it.next() {
                Some(p) => opts.baseline_path = Some(PathBuf::from(p)),
                None => return Err("--baseline expects a file path".to_string()),
            },
            "--no-baseline" => opts.no_baseline = true,
            "--update-baseline" => opts.update_baseline = true,
            "-h" | "--help" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            path if !root_set => {
                opts.root = PathBuf::from(path);
                root_set = true;
            }
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("dlht_audit: {msg}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if !opts.root.join("Cargo.toml").exists() {
        eprintln!(
            "dlht_audit: {} does not look like a workspace root (no Cargo.toml)",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let findings = match dlht_audit::audit_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dlht_audit: IO error: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| opts.root.join(dlht_audit::baseline::DEFAULT_FILE));

    if opts.update_baseline {
        let b = dlht_audit::Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(&baseline_path, b.to_json()) {
            eprintln!("dlht_audit: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "dlht_audit: wrote {} entr{} to {}",
            b.entries.len(),
            if b.entries.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.no_baseline {
        dlht_audit::Baseline::empty()
    } else {
        match dlht_audit::Baseline::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("dlht_audit: bad baseline: {e}");
                return ExitCode::from(2);
            }
        }
    };
    let (new, baselined) = baseline.partition(&findings);

    if opts.json {
        let tagged: Vec<(&dlht_audit::Finding, bool)> =
            findings.iter().map(|f| (f, baseline.matches(f))).collect();
        print!("{}", dlht_audit::json::findings_to_json(&tagged));
    } else {
        for f in &baselined {
            println!("note: {f} [baselined]");
        }
        for f in &new {
            println!("{f}");
        }
    }

    if new.is_empty() {
        if baselined.is_empty() {
            eprintln!("dlht_audit: clean");
        } else {
            eprintln!(
                "dlht_audit: clean ({} baselined finding(s) reported)",
                baselined.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "dlht_audit: {} new finding(s){}",
            new.len(),
            if baselined.is_empty() {
                String::new()
            } else {
                format!(" (+{} baselined)", baselined.len())
            }
        );
        ExitCode::FAILURE
    }
}
