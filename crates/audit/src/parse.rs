//! Item parser: functions, structs, impls, mods, traits, statics — with
//! `#[cfg(test)]` scoping — over the [`crate::tokens`] stream.
//!
//! This is deliberately *not* a full Rust grammar. The audit rules need four
//! things a line scanner cannot give them:
//!
//! 1. **Item boundaries** — which function a given line belongs to (for
//!    hot-path rules) and where its body ends (via delimiter pairing);
//! 2. **Signatures** — parameter and return-type token ranges (for the
//!    guard-escape rule);
//! 3. **Struct fields and statics with their types** (for the atomic-field
//!    inventory);
//! 4. **Scope-accurate `#[cfg(test)]` regions** — a test module nested at any
//!    depth, a `#[test]` fn, or a `#[cfg(test)]` impl block, not just a
//!    top-of-file region heuristic.
//!
//! Macro invocation token trees are skipped during *item* detection (so a
//! `macro_rules!` body or a `vec![...]` argument can never produce phantom
//! items), but their lines keep normal test/non-test classification.

use crate::lexer::LexedFile;
use crate::tokens::{self, Delim, Tok, TokenFile};

/// Item visibility, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// No `pub`.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in ...)`.
    Restricted,
    /// Plain `pub` — part of the crate's public API.
    Pub,
}

/// A parsed function (or trait-method signature).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub vis: Vis,
    /// Enclosing `impl`/`trait` type name, if any.
    pub owner: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub decl_line: usize,
    /// 0-based line of the body's closing brace (or of the `;`).
    pub end_line: usize,
    /// Token range (half-open) of the parameter list, inside the parens.
    pub params: (usize, usize),
    /// Token range (half-open) of the return type; empty when none.
    pub ret: (usize, usize),
    /// Token range (half-open) of the body, inside the braces; `None` for
    /// bodiless trait-method signatures.
    pub body: Option<(usize, usize)>,
    /// Inside test scope (a `#[cfg(test)]` container, `#[test]`, or a test
    /// file).
    pub is_test: bool,
}

/// One named struct field.
#[derive(Debug, Clone)]
pub struct FieldItem {
    pub name: String,
    /// Token range (half-open) of the field's type.
    pub ty: (usize, usize),
    /// 0-based line of the field name.
    pub line: usize,
}

/// A parsed `struct` with its named fields (tuple/unit structs have none).
#[derive(Debug, Clone)]
pub struct StructItem {
    pub name: String,
    pub decl_line: usize,
    pub fields: Vec<FieldItem>,
    pub is_test: bool,
}

/// A `static` or `const` item with its type.
#[derive(Debug, Clone)]
pub struct StaticItem {
    pub name: String,
    pub ty: (usize, usize),
    pub line: usize,
    pub is_test: bool,
}

/// A fully analyzed file: sanitized lines, token stream, items, and per-line
/// test-scope flags.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    pub lexed: LexedFile,
    pub toks: TokenFile,
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    pub statics: Vec<StaticItem>,
    /// `in_test[line]`: is this 0-based line inside test scope?
    pub in_test: Vec<bool>,
}

impl ParsedFile {
    /// Render a token range as compact text.
    pub fn text(&self, range: (usize, usize)) -> String {
        self.toks.text(range.0, range.1)
    }

    /// Whether the 0-based line is in test scope (`false` past the end).
    pub fn line_in_test(&self, line: usize) -> bool {
        self.in_test.get(line).copied().unwrap_or(false)
    }
}

/// Lex, tokenize, and parse `source`. `file_is_test` marks the whole file as
/// test scope (integration tests, examples, benches).
pub fn parse_source(source: &str, file_is_test: bool) -> ParsedFile {
    parse_lexed(crate::lexer::lex(source), file_is_test)
}

/// Tokenize and parse an already-lexed file.
pub fn parse_lexed(lexed: LexedFile, file_is_test: bool) -> ParsedFile {
    let toks = tokens::tokenize(&lexed);
    let n_lines = lexed.lines.len();
    let mut p = Parser {
        t: &toks,
        fns: Vec::new(),
        structs: Vec::new(),
        statics: Vec::new(),
        test_spans: Vec::new(),
        containers: Vec::new(),
    };
    p.run(file_is_test);

    let mut in_test = vec![file_is_test; n_lines];
    for (a, b) in &p.test_spans {
        for flag in in_test.iter_mut().take(*b + 1).skip(*a) {
            *flag = true;
        }
    }
    ParsedFile {
        lexed,
        fns: p.fns,
        structs: p.structs,
        statics: p.statics,
        in_test,
        toks,
    }
}

/// An entered item scope (mod/impl/trait/fn body).
struct Container {
    /// Token index of the body's closing brace.
    close: usize,
    is_test: bool,
    owner: Option<String>,
}

struct Parser<'a> {
    t: &'a TokenFile,
    fns: Vec<FnItem>,
    structs: Vec<StructItem>,
    statics: Vec<StaticItem>,
    /// 0-based inclusive line spans of test scope.
    test_spans: Vec<(usize, usize)>,
    containers: Vec<Container>,
}

/// Words that may sit between an attribute and the item keyword it decorates.
const QUALIFIERS: &[&str] = &["pub", "unsafe", "async", "extern", "default"];

impl Parser<'_> {
    fn tok(&self, i: usize) -> Option<&Tok> {
        self.t.get(i)
    }

    fn in_test_scope(&self, file_is_test: bool) -> bool {
        file_is_test || self.containers.iter().any(|c| c.is_test)
    }

    fn current_owner(&self) -> Option<String> {
        self.containers.iter().rev().find_map(|c| c.owner.clone())
    }

    fn run(&mut self, file_is_test: bool) {
        let n = self.t.toks.len();
        let mut i = 0usize;
        // Does the pending attribute run mark the next item as test scope
        // (`#[test]`, `#[cfg(test)]`, ...)? And where did it start (for the
        // test span to cover the attribute lines too)?
        let mut attr_test = false;
        let mut attr_line: Option<usize> = None;

        while i < n {
            self.containers.retain(|c| c.close >= i);
            let in_test = self.in_test_scope(file_is_test);

            match self.tok(i) {
                Some(Tok::Punct('#')) => {
                    // `#[...]` or `#![...]` attribute.
                    let mut j = i + 1;
                    if let Some(Tok::Punct('!')) = self.tok(j) {
                        j += 1;
                    }
                    if let Some(Tok::Open(Delim::Bracket)) = self.tok(j) {
                        if let Some(close) = self.t.match_of(j) {
                            if self.t.range_has_word(j + 1, close, "test") {
                                attr_test = true;
                            }
                            attr_line.get_or_insert(self.t.line(i));
                            i = close + 1;
                            continue;
                        }
                    }
                    i += 1;
                }
                Some(Tok::Word(w)) => {
                    let w = w.clone();
                    match w.as_str() {
                        "fn" => {
                            i = self.parse_fn(i, in_test || attr_test, attr_line);
                            (attr_test, attr_line) = (false, None);
                        }
                        "struct" => {
                            i = self.parse_struct(i, in_test || attr_test);
                            (attr_test, attr_line) = (false, None);
                        }
                        "mod" | "trait" => {
                            i = self.parse_container(i, in_test || attr_test, attr_line);
                            (attr_test, attr_line) = (false, None);
                        }
                        "impl" => {
                            if self.impl_is_type_position(i) {
                                i += 1;
                            } else {
                                i = self.parse_impl(i, in_test || attr_test, attr_line);
                                (attr_test, attr_line) = (false, None);
                            }
                        }
                        "static" | "const" => {
                            i = self.parse_static(i, in_test || attr_test);
                            // `const` may have been a fn qualifier — keep the
                            // attribute run alive either way; a following
                            // non-qualifier token clears it below.
                        }
                        "macro_rules" => {
                            i = self.skip_macro_rules(i);
                            (attr_test, attr_line) = (false, None);
                        }
                        "pub" => {
                            // Skip `pub` and an optional `(crate)`-style
                            // restriction without clearing pending attributes.
                            i += 1;
                            if let Some(Tok::Open(Delim::Paren)) = self.tok(i) {
                                i = self.t.match_of(i).map(|c| c + 1).unwrap_or(i + 1);
                            }
                        }
                        _ if QUALIFIERS.contains(&w.as_str()) => i += 1,
                        _ => {
                            // An ident-macro invocation's token tree cannot
                            // declare items — skip it whole.
                            if let (Some(Tok::Punct('!')), Some(open_tok)) =
                                (self.tok(i + 1), self.tok(i + 2))
                            {
                                if matches!(open_tok, Tok::Open(_)) {
                                    if let Some(close) = self.t.match_of(i + 2) {
                                        i = close + 1;
                                        (attr_test, attr_line) = (false, None);
                                        continue;
                                    }
                                }
                            }
                            i += 1;
                            (attr_test, attr_line) = (false, None);
                        }
                    }
                }
                Some(_) => {
                    i += 1;
                    (attr_test, attr_line) = (false, None);
                }
                None => break,
            }
        }
    }

    /// Is the `impl` at `i` an `impl Trait` *type* (return/argument position)
    /// rather than an impl block?
    fn impl_is_type_position(&self, i: usize) -> bool {
        if i == 0 {
            return false;
        }
        match self.tok(i - 1) {
            Some(Tok::Punct(c)) => matches!(c, '>' | ':' | '&' | '+' | '<' | ',' | '='),
            Some(Tok::Word(w)) => w == "dyn",
            Some(Tok::Open(Delim::Paren)) => true,
            _ => false,
        }
    }

    /// Skip a generic parameter/argument list starting at the `<` at `i`;
    /// returns the index just past the matching `>`. Handles `->` inside
    /// bounds (`Fn() -> T`) and jumps delimiter groups whole.
    fn skip_angles(&self, i: usize) -> usize {
        debug_assert!(matches!(self.tok(i), Some(Tok::Punct('<'))));
        let mut depth = 0i32;
        let mut j = i;
        while j < self.t.toks.len() {
            match self.tok(j) {
                Some(Tok::Punct('-')) if matches!(self.tok(j + 1), Some(Tok::Punct('>'))) => {
                    j += 2;
                    continue;
                }
                Some(Tok::Punct('<')) => depth += 1,
                Some(Tok::Punct('>')) => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                Some(Tok::Open(_)) => {
                    if let Some(close) = self.t.match_of(j) {
                        j = close;
                    }
                }
                None => break,
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Visibility of the item whose keyword sits at token `i`, by scanning
    /// backwards over qualifier words.
    fn vis_before(&self, i: usize) -> Vis {
        let mut j = i;
        while j > 0 {
            j -= 1;
            match self.tok(j) {
                Some(Tok::Word(w))
                    if matches!(
                        w.as_str(),
                        "unsafe" | "async" | "const" | "extern" | "default"
                    ) => {}
                Some(Tok::Word(w)) if w == "pub" => return Vis::Pub,
                Some(Tok::Close(Delim::Paren)) => {
                    // Possibly the `(crate)` of `pub(crate)`.
                    if let Some(open) = self.t.match_of(j) {
                        if open > 0
                            && matches!(self.tok(open - 1), Some(Tok::Word(w)) if w == "pub")
                        {
                            return Vis::Restricted;
                        }
                    }
                    return Vis::Private;
                }
                _ => return Vis::Private,
            }
        }
        Vis::Private
    }

    /// Parse `fn name<...>(params) -> ret [where ...] { body }` with the `fn`
    /// keyword at `i`. Returns the index to continue scanning from (just
    /// inside the body, so nested items are found).
    fn parse_fn(&mut self, i: usize, is_test: bool, attr_line: Option<usize>) -> usize {
        let decl_line = self.t.line(i);
        let Some(Tok::Word(name)) = self.tok(i + 1) else {
            // `fn(` — a function-pointer type, not an item.
            return i + 1;
        };
        let name = name.clone();
        let mut j = i + 2;
        if let Some(Tok::Punct('<')) = self.tok(j) {
            j = self.skip_angles(j);
        }
        let Some(Tok::Open(Delim::Paren)) = self.tok(j) else {
            return i + 1;
        };
        let Some(params_close) = self.t.match_of(j) else {
            return i + 1;
        };
        let params = (j + 1, params_close);
        j = params_close + 1;

        // Return type: tokens between `->` and `where` / `{` / `;`.
        let mut ret = (j, j);
        if matches!(self.tok(j), Some(Tok::Punct('-')))
            && matches!(self.tok(j + 1), Some(Tok::Punct('>')))
        {
            j += 2;
            let start = j;
            while j < self.t.toks.len() {
                match self.tok(j) {
                    Some(Tok::Word(w)) if w == "where" => break,
                    Some(Tok::Open(Delim::Brace)) | Some(Tok::Punct(';')) => break,
                    Some(Tok::Open(_)) => {
                        j = self.t.match_of(j).map(|c| c + 1).unwrap_or(j + 1);
                        continue;
                    }
                    None => break,
                    _ => j += 1,
                }
            }
            ret = (start, j);
        }
        // Skip a `where` clause up to the body brace or `;`.
        while j < self.t.toks.len() {
            match self.tok(j) {
                Some(Tok::Open(Delim::Brace)) | Some(Tok::Punct(';')) => break,
                Some(Tok::Open(_)) => {
                    j = self.t.match_of(j).map(|c| c + 1).unwrap_or(j + 1);
                }
                None => break,
                _ => j += 1,
            }
        }

        let (body, end_line, next) = match self.tok(j) {
            Some(Tok::Open(Delim::Brace)) => match self.t.match_of(j) {
                Some(close) => {
                    self.containers.push(Container {
                        close,
                        is_test,
                        owner: None,
                    });
                    (Some((j + 1, close)), self.t.line(close), j + 1)
                }
                None => (None, self.t.line(j), j + 1),
            },
            _ => (None, self.t.line(j), j + 1),
        };

        if is_test {
            self.test_spans
                .push((attr_line.unwrap_or(decl_line), end_line));
        }
        self.fns.push(FnItem {
            name,
            vis: self.vis_before(i),
            owner: self.current_owner(),
            decl_line,
            end_line,
            params,
            ret,
            body,
            is_test,
        });
        next
    }

    /// Parse `struct Name<...> { fields }` / tuple / unit struct.
    fn parse_struct(&mut self, i: usize, is_test: bool) -> usize {
        let decl_line = self.t.line(i);
        let Some(Tok::Word(name)) = self.tok(i + 1) else {
            return i + 1;
        };
        let name = name.clone();
        let mut j = i + 2;
        if let Some(Tok::Punct('<')) = self.tok(j) {
            j = self.skip_angles(j);
        }
        // Skip a `where` clause (brace-less until the body).
        while j < self.t.toks.len()
            && !matches!(
                self.tok(j),
                Some(Tok::Open(Delim::Brace))
                    | Some(Tok::Open(Delim::Paren))
                    | Some(Tok::Punct(';'))
            )
        {
            j += 1;
        }
        let mut fields = Vec::new();
        let next = match self.tok(j) {
            Some(Tok::Open(Delim::Brace)) => {
                let close = self.t.match_of(j).unwrap_or(j);
                fields = self.parse_named_fields(j + 1, close);
                close + 1
            }
            Some(Tok::Open(Delim::Paren)) => self.t.match_of(j).map(|c| c + 1).unwrap_or(j + 1),
            _ => j + 1,
        };
        self.structs.push(StructItem {
            name,
            decl_line,
            fields,
            is_test,
        });
        next
    }

    /// Named fields between token indices `start..close` (inside the braces).
    fn parse_named_fields(&self, start: usize, close: usize) -> Vec<FieldItem> {
        let mut fields = Vec::new();
        let mut j = start;
        while j < close {
            match self.tok(j) {
                // Skip field attributes.
                Some(Tok::Punct('#')) => {
                    if let Some(Tok::Open(Delim::Bracket)) = self.tok(j + 1) {
                        j = self.t.match_of(j + 1).map(|c| c + 1).unwrap_or(j + 2);
                    } else {
                        j += 1;
                    }
                }
                Some(Tok::Word(w)) if w == "pub" => {
                    j += 1;
                    if let Some(Tok::Open(Delim::Paren)) = self.tok(j) {
                        j = self.t.match_of(j).map(|c| c + 1).unwrap_or(j + 1);
                    }
                }
                Some(Tok::Word(name)) if matches!(self.tok(j + 1), Some(Tok::Punct(':'))) => {
                    let name = name.clone();
                    let line = self.t.line(j);
                    let ty_start = j + 2;
                    let mut k = ty_start;
                    while k < close {
                        match self.tok(k) {
                            Some(Tok::Punct(',')) => break,
                            Some(Tok::Punct('<')) => k = self.skip_angles(k),
                            Some(Tok::Open(_)) => {
                                k = self.t.match_of(k).map(|c| c + 1).unwrap_or(k + 1)
                            }
                            _ => k += 1,
                        }
                    }
                    fields.push(FieldItem {
                        name,
                        ty: (ty_start, k),
                        line,
                    });
                    j = k + 1;
                }
                _ => j += 1,
            }
        }
        fields
    }

    /// Parse a `mod name { ... }` or `trait Name { ... }` container.
    fn parse_container(&mut self, i: usize, is_test: bool, attr_line: Option<usize>) -> usize {
        let decl_line = self.t.line(i);
        let is_trait = matches!(self.tok(i), Some(Tok::Word(w)) if w == "trait");
        let name = match self.tok(i + 1) {
            Some(Tok::Word(w)) => w.clone(),
            _ => return i + 1,
        };
        let mut j = i + 2;
        if let Some(Tok::Punct('<')) = self.tok(j) {
            j = self.skip_angles(j);
        }
        while j < self.t.toks.len()
            && !matches!(
                self.tok(j),
                Some(Tok::Open(Delim::Brace)) | Some(Tok::Punct(';'))
            )
        {
            match self.tok(j) {
                Some(Tok::Open(_)) => j = self.t.match_of(j).map(|c| c + 1).unwrap_or(j + 1),
                _ => j += 1,
            }
        }
        match self.tok(j) {
            Some(Tok::Open(Delim::Brace)) => {
                let close = self.t.match_of(j).unwrap_or(j);
                self.containers.push(Container {
                    close,
                    is_test,
                    owner: is_trait.then_some(name),
                });
                if is_test {
                    self.test_spans
                        .push((attr_line.unwrap_or(decl_line), self.t.line(close)));
                }
                j + 1
            }
            _ => j + 1,
        }
    }

    /// Parse `impl<...> [Trait for] Type { ... }`.
    fn parse_impl(&mut self, i: usize, is_test: bool, attr_line: Option<usize>) -> usize {
        let decl_line = self.t.line(i);
        let mut j = i + 1;
        if let Some(Tok::Punct('<')) = self.tok(j) {
            j = self.skip_angles(j);
        }
        // Collect the self-type name: the last angle-depth-0 word before the
        // body, restarting after `for` (so `impl Trait for Type` → `Type`).
        let mut name: Option<String> = None;
        while j < self.t.toks.len() {
            match self.tok(j) {
                Some(Tok::Open(Delim::Brace)) | Some(Tok::Punct(';')) => break,
                Some(Tok::Word(w)) if w == "where" => {
                    // Skip the where clause to the brace.
                    while j < self.t.toks.len()
                        && !matches!(self.tok(j), Some(Tok::Open(Delim::Brace)))
                    {
                        match self.tok(j) {
                            Some(Tok::Open(_)) => {
                                j = self.t.match_of(j).map(|c| c + 1).unwrap_or(j + 1)
                            }
                            _ => j += 1,
                        }
                    }
                    break;
                }
                Some(Tok::Word(w)) if w == "for" => {
                    name = None;
                    j += 1;
                }
                Some(Tok::Word(w)) => {
                    name = Some(w.clone());
                    j += 1;
                }
                Some(Tok::Punct('<')) => j = self.skip_angles(j),
                Some(Tok::Open(_)) => j = self.t.match_of(j).map(|c| c + 1).unwrap_or(j + 1),
                None => break,
                _ => j += 1,
            }
        }
        match self.tok(j) {
            Some(Tok::Open(Delim::Brace)) => {
                let close = self.t.match_of(j).unwrap_or(j);
                self.containers.push(Container {
                    close,
                    is_test,
                    owner: name,
                });
                if is_test {
                    self.test_spans
                        .push((attr_line.unwrap_or(decl_line), self.t.line(close)));
                }
                j + 1
            }
            _ => j + 1,
        }
    }

    /// Parse a `static`/`const` item; a `const` that turns out to be a fn
    /// qualifier (or `*const` / inline-`const`) falls through harmlessly.
    fn parse_static(&mut self, i: usize, is_test: bool) -> usize {
        if i > 0 && matches!(self.tok(i - 1), Some(Tok::Punct('*'))) {
            return i + 1; // `*const T`
        }
        let mut j = i + 1;
        if let Some(Tok::Word(w)) = self.tok(j) {
            if w == "mut" {
                j += 1;
            } else if matches!(w.as_str(), "fn" | "unsafe" | "async" | "extern") {
                return i + 1; // `const fn`, `const unsafe fn`, ...
            }
        }
        let Some(Tok::Word(name)) = self.tok(j) else {
            return i + 1; // `const { ... }` block or `const _` handled below
        };
        let name = name.clone();
        if !matches!(self.tok(j + 1), Some(Tok::Punct(':'))) {
            return i + 1;
        }
        let ty_start = j + 2;
        let mut k = ty_start;
        while k < self.t.toks.len() {
            match self.tok(k) {
                Some(Tok::Punct('=')) | Some(Tok::Punct(';')) => break,
                Some(Tok::Punct('<')) => k = self.skip_angles(k),
                Some(Tok::Open(_)) => k = self.t.match_of(k).map(|c| c + 1).unwrap_or(k + 1),
                None => break,
                _ => k += 1,
            }
        }
        self.statics.push(StaticItem {
            name,
            ty: (ty_start, k),
            line: self.t.line(i),
            is_test,
        });
        k + 1
    }

    /// Skip a whole `macro_rules! name { ... }` definition.
    fn skip_macro_rules(&self, i: usize) -> usize {
        let mut j = i + 1;
        if let Some(Tok::Punct('!')) = self.tok(j) {
            j += 1;
        }
        if let Some(Tok::Word(_)) = self.tok(j) {
            j += 1;
        }
        if let Some(Tok::Open(_)) = self.tok(j) {
            return self.t.match_of(j).map(|c| c + 1).unwrap_or(j + 1);
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> Vec<FnItem> {
        parse_source(src, false).fns
    }

    #[test]
    fn simple_fn_with_signature() {
        let p = parse_source(
            "pub fn next_ptr(&self, order: u8) -> *mut Index {\n    x\n}\n",
            false,
        );
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "next_ptr");
        assert_eq!(f.vis, Vis::Pub);
        assert_eq!(p.text(f.ret), "*mut Index");
        assert!(p.text(f.params).contains("&self"));
        assert_eq!(f.decl_line, 0);
        assert_eq!(f.end_line, 2);
    }

    #[test]
    fn visibility_levels() {
        let p = parse_source(
            "fn a() {}\npub fn b() {}\npub(crate) fn c() {}\npub(in crate::x) fn d() {}\npub unsafe fn e() {}\n",
            false,
        );
        let vis: Vec<Vis> = p.fns.iter().map(|f| f.vis).collect();
        assert_eq!(
            vis,
            [
                Vis::Private,
                Vis::Pub,
                Vis::Restricted,
                Vis::Restricted,
                Vis::Pub
            ]
        );
    }

    #[test]
    fn nested_generics_in_return_type() {
        // Regression (`>>`): the double-closer must not break return-type
        // extraction or body pairing.
        let p = parse_source(
            "fn f() -> Vec<Vec<u64>> {\n    let x = a >> 2;\n    vec![]\n}\nfn g() {}\n",
            false,
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.text(p.fns[0].ret), "Vec<Vec<u64>>");
        assert_eq!(p.fns[1].name, "g");
    }

    #[test]
    fn generic_bounds_with_fn_arrows() {
        let p = parse_source(
            "pub fn apply<F: Fn(u64) -> Result<u64, ()>>(f: F) -> Option<u64> where F: Send {\n    None\n}\n",
            false,
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.text(p.fns[0].ret), "Option<u64>");
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parse_source(
            "struct G {\n    drop_fn: unsafe fn(*mut u8),\n}\nfn t(f: fn(u8)) {}\n",
            false,
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "t");
    }

    #[test]
    fn impl_blocks_set_the_owner() {
        let p = parse_source(
            "impl<'a, E: Exec> Pipeline<'a, E> {\n    pub fn poll(&mut self) -> Option<u8> { None }\n}\nimpl KvBackend for ShardedTable {\n    fn execute(&self) {}\n}\n",
            false,
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Pipeline"));
        assert_eq!(p.fns[1].owner.as_deref(), Some("ShardedTable"));
    }

    #[test]
    fn impl_trait_in_return_position_is_not_an_impl_block() {
        let p = parse_source(
            "fn iter() -> impl Iterator<Item = u64> {\n    std::iter::empty()\n}\nfn after() {}\n",
            false,
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[1].name, "after");
    }

    #[test]
    fn cfg_test_mod_scopes_lines_at_any_depth() {
        let src = "mod outer {\n    #[cfg(test)]\n    mod tests {\n        fn t() {}\n    }\n    fn live() {}\n}\n";
        let p = parse_source(src, false);
        assert!(p.line_in_test(1), "attr line");
        assert!(p.line_in_test(3), "test fn");
        assert!(!p.line_in_test(5), "live fn after the test mod");
        let t = p.fns.iter().find(|f| f.name == "t").unwrap();
        let live = p.fns.iter().find(|f| f.name == "live").unwrap();
        assert!(t.is_test);
        assert!(!live.is_test);
    }

    #[test]
    fn test_attribute_marks_a_single_fn() {
        let p = parse_source("#[test]\nfn check() {}\nfn live() {}\n", false);
        assert!(p.fns[0].is_test);
        assert!(!p.fns[1].is_test);
        assert!(p.line_in_test(0) && p.line_in_test(1));
        assert!(!p.line_in_test(2));
    }

    #[test]
    fn macro_token_trees_do_not_produce_phantom_items() {
        // Regression: `fn`/`struct` fragments inside macro invocations and
        // `macro_rules!` bodies must not parse as items.
        let src = "macro_rules! gen {\n    () => { fn phantom() {} };\n}\nprintln!(\"{}\", 1);\nvec![1, 2];\nfn real() {}\n";
        let p = parse_source(src, false);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"], "{names:?}");
    }

    #[test]
    fn struct_fields_with_types() {
        let p = parse_source(
            "pub struct Slot {\n    pub header: AtomicU64,\n    pair: AtomicPair,\n    #[doc(hidden)]\n    pub(crate) mask: [u8; 4],\n}\n",
            false,
        );
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.name, "Slot");
        let f: Vec<(String, String)> = s
            .fields
            .iter()
            .map(|f| (f.name.clone(), p.text(f.ty)))
            .collect();
        assert_eq!(
            f,
            [
                ("header".into(), "AtomicU64".into()),
                ("pair".into(), "AtomicPair".into()),
                ("mask".into(), "[u8;4]".into()),
            ]
        );
    }

    #[test]
    fn statics_and_consts_with_types() {
        let p = parse_source(
            "static EPOCH: AtomicU64 = AtomicU64::new(0);\nconst N: usize = 8;\nconst fn f() -> u8 { 0 }\nfn g(p: *const u8) {}\n",
            false,
        );
        let names: Vec<&str> = p.statics.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["EPOCH", "N"]);
        assert_eq!(p.text(p.statics[0].ty), "AtomicU64");
        // `const fn` and `*const` did not produce statics, and both fns parse.
        assert_eq!(p.fns.len(), 2);
    }

    #[test]
    fn raw_identifier_fn_names_survive() {
        let p = parse_source("fn r#type() {}\nfn plain() {}\n", false);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["r#type", "plain"]);
    }

    #[test]
    fn trait_methods_with_and_without_bodies() {
        let p = parse_source(
            "pub trait KvBackend {\n    fn execute(&self, n: u64) -> u64;\n    fn prefetch(&self, k: u64) {}\n}\n",
            false,
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("KvBackend"));
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn nested_fn_inside_fn_body_is_found() {
        let p = parse_source("fn outer() {\n    fn inner() {}\n}\n", false);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn whole_file_test_flag() {
        let p = parse_source("fn t() {}\n", true);
        assert!(p.fns[0].is_test);
        assert!(p.line_in_test(0));
    }

    #[test]
    fn bodies_map_token_ranges() {
        let p = parse_source("fn f() {\n    a.unwrap();\n}\n", false);
        let (b0, b1) = p.fns[0].body.unwrap();
        assert!(p.toks.range_has_word(b0, b1, "unwrap"));
        let _ = fns("fn g();");
    }
}
