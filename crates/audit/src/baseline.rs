//! The suppression baseline: `audit.baseline.json` at the workspace root.
//!
//! A baseline entry matches a finding by **(file, rule, message)** — line
//! numbers are deliberately ignored so unrelated edits that shift a finding
//! up or down do not invalidate the baseline. Matching is set-semantic: one
//! entry suppresses every identical (file, rule, message) triple.
//!
//! Diff-mode exit semantics (see `main.rs`): baselined findings are
//! *reported* but do not gate; only findings absent from the baseline fail
//! the run. `--update-baseline` rewrites the file from the current findings;
//! an entry is removed by fixing the finding and re-running with
//! `--update-baseline` (the workflow in `docs/CORRECTNESS.md`).
//!
//! # Schema (`dlht-audit-baseline/v1`)
//!
//! ```json
//! {
//!   "schema": "dlht-audit-baseline/v1",
//!   "entries": [
//!     { "file": "crates/x/src/y.rs", "rule": "guard-escape", "message": "..." }
//!   ]
//! }
//! ```

use crate::json::{self, Json};
use crate::rules::Finding;
use std::fmt::Write as _;
use std::path::Path;

/// The baseline schema identifier.
pub const SCHEMA: &str = "dlht-audit-baseline/v1";

/// The file name looked up at the workspace root by default.
pub const DEFAULT_FILE: &str = "audit.baseline.json";

/// One suppressed finding shape (line-number agnostic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub file: String,
    /// Rule name kept as a string so a baseline written by a newer analyzer
    /// (with rules this build does not know) still loads.
    pub rule: String,
    pub message: String,
}

/// A loaded (or freshly built) suppression set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// An empty baseline: nothing is suppressed.
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Parse a baseline document.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text)?;
        let obj = doc.as_obj().ok_or("top level is not an object")?;
        let schema = json::get(obj, "schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {SCHEMA:?})"
            ));
        }
        let arr = json::get(obj, "entries")
            .and_then(Json::as_arr)
            .ok_or("missing \"entries\" array")?;
        let mut entries = Vec::with_capacity(arr.len());
        for item in arr {
            let o = item.as_obj().ok_or("entry is not an object")?;
            let field = |k: &str| {
                json::get(o, k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("entry missing {k:?}"))
            };
            entries.push(Entry {
                file: field("file")?,
                rule: field("rule")?,
                message: field("message")?,
            });
        }
        Ok(Baseline { entries })
    }

    /// Load from `path`; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::from_json(&text).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::empty()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Build a baseline that suppresses exactly `findings`, deduplicated.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: Vec<Entry> = Vec::new();
        for f in findings {
            let e = Entry {
                file: f.file.clone(),
                rule: f.rule.name().to_string(),
                message: f.message.clone(),
            };
            if !entries.contains(&e) {
                entries.push(e);
            }
        }
        Baseline { entries }
    }

    /// Is this finding suppressed?
    pub fn matches(&self, f: &Finding) -> bool {
        self.entries
            .iter()
            .any(|e| e.file == f.file && e.rule == f.rule.name() && e.message == f.message)
    }

    /// Split findings into `(new, baselined)`, preserving order.
    pub fn partition<'a>(&self, findings: &'a [Finding]) -> (Vec<&'a Finding>, Vec<&'a Finding>) {
        findings.iter().partition(|f| !self.matches(f))
    }

    /// Serialize as a `dlht-audit-baseline/v1` document (deterministic).
    pub fn to_json(&self) -> String {
        fn esc(s: &str, out: &mut String) {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        let mut out = String::new();
        out.push_str("{\n  \"schema\": ");
        esc(SCHEMA, &mut out);
        out.push_str(",\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    { \"file\": ");
            esc(&e.file, &mut out);
            out.push_str(", \"rule\": ");
            esc(&e.rule, &mut out);
            out.push_str(", \"message\": ");
            esc(&e.message, &mut out);
            out.push_str(" }");
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(file: &str, line: usize, msg: &str) -> Finding {
        Finding::new(file, line, Rule::GuardEscape, msg)
    }

    #[test]
    fn baseline_round_trips_and_ignores_lines() {
        let f1 = finding("a.rs", 10, "escape one");
        let f2 = finding("b.rs", 20, "escape two");
        let b = Baseline::from_findings(&[f1.clone(), f2.clone()]);
        let back = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(back, b);
        // The same finding on a different line still matches.
        assert!(back.matches(&finding("a.rs", 999, "escape one")));
        // A different message does not.
        assert!(!back.matches(&finding("a.rs", 10, "escape three")));
    }

    #[test]
    fn partition_separates_new_from_baselined() {
        let old = finding("a.rs", 1, "known");
        let b = Baseline::from_findings(std::slice::from_ref(&old));
        let new = finding("a.rs", 2, "fresh");
        let all = vec![old.clone(), new.clone()];
        let (fresh, known) = b.partition(&all);
        assert_eq!(fresh, vec![&new]);
        assert_eq!(known, vec![&old]);
    }

    #[test]
    fn duplicate_findings_dedupe_into_one_entry() {
        let f = finding("a.rs", 1, "same");
        let b = Baseline::from_findings(&[f.clone(), finding("a.rs", 9, "same")]);
        assert_eq!(b.entries.len(), 1);
    }

    #[test]
    fn missing_file_loads_empty() {
        let b = Baseline::load(Path::new("/nonexistent/audit.baseline.json")).unwrap();
        assert!(b.entries.is_empty());
    }

    #[test]
    fn unknown_rule_names_still_load() {
        // Forward compat: a baseline from a newer analyzer must not brick
        // older builds.
        let text = r#"{"schema": "dlht-audit-baseline/v1", "entries": [
            { "file": "x.rs", "rule": "future-rule", "message": "m" }
        ]}"#;
        let b = Baseline::from_json(text).unwrap();
        assert_eq!(b.entries[0].rule, "future-rule");
        assert!(!b.matches(&finding("x.rs", 1, "m")), "different rule");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        assert!(Baseline::from_json(r#"{"schema": "nope", "entries": []}"#).is_err());
    }
}
