//! The audit rules, run over [`crate::lexer::LexedFile`]s.
//!
//! Rules (see `docs/CORRECTNESS.md` for the full contract):
//!
//! 1. **unsafe-needs-safety** — every `unsafe` block, `unsafe fn`/`trait`
//!    declaration, and `unsafe impl` must be justified by a `// SAFETY:`
//!    comment immediately above (or on the same line), or — for declarations —
//!    a `# Safety` doc section. Function-*pointer types* (`unsafe fn(..)` in
//!    type position) are not unsafe sites and are skipped.
//! 2. **atomic-needs-ordering** — every atomic load/store/RMW and fence must
//!    name its ordering at the call site (`Ordering::X`, or forward an
//!    `order`-named parameter). `use Ordering::Relaxed; x.load(Relaxed)` is a
//!    finding: the ordering must be readable at the call site. A call whose
//!    ordering is fixed *inside* the callee (e.g. the repo's dw-CAS
//!    `AtomicPair::compare_exchange`) is justified with an `// ORDERING:`
//!    comment instead. Test code is exempt.
//! 3. **seqcst-needs-rationale** — `SeqCst` is banned unless the site carries
//!    an `// ORDERING:` rationale (same line or immediately above). Test code
//!    is exempt.
//! 4. **banned-construct** — `mem::transmute`, `static mut`, and `#[allow]` /
//!    `#![allow]` attributes require an `// AUDIT:` justification (same line
//!    or immediately above). `#[allow]` is exempt in test code.
//! 5. **crate-root-lint-header** — every crate root must carry
//!    `#![forbid(unsafe_code)]` or `#![deny(unsafe_op_in_unsafe_fn)]`.
//!
//! Rules 6–8 (`acquire-release-pairing`, `guard-escape`,
//! `no-panic-hot-path`) need the whole-workspace inventory and live in
//! [`crate::crossfile`]; this module also defines the shared [`Rule`],
//! [`Severity`], and [`Finding`] vocabulary for all eight.

use crate::lexer::LexedFile;
use crate::parse::ParsedFile;

/// What kind of file is being audited (affects rule strictness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A crate root (`src/lib.rs`): the lint-header rule applies.
    CrateRoot,
    /// An integration test / dev-only file: SeqCst and `#[allow]` are exempt.
    Test,
    /// Any other source file.
    Normal,
}

/// Which rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    UnsafeNeedsSafety,
    AtomicNeedsOrdering,
    SeqCstNeedsRationale,
    BannedConstruct,
    CrateRootLintHeader,
    AcquireReleasePairing,
    GuardEscape,
    NoPanicHotPath,
}

impl Rule {
    /// Stable kebab-case name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeNeedsSafety => "unsafe-needs-safety",
            Rule::AtomicNeedsOrdering => "atomic-needs-ordering",
            Rule::SeqCstNeedsRationale => "seqcst-needs-rationale",
            Rule::BannedConstruct => "banned-construct",
            Rule::CrateRootLintHeader => "crate-root-lint-header",
            Rule::AcquireReleasePairing => "acquire-release-pairing",
            Rule::GuardEscape => "guard-escape",
            Rule::NoPanicHotPath => "no-panic-hot-path",
        }
    }

    /// Parse a kebab-case rule name (inverse of [`Rule::name`]).
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// Diagnostic severity: `acquire-release-pairing` is a *warning* (its
    /// field-name pooling is a documented heuristic); every other rule states
    /// a fact about the flagged line and is an *error*.
    pub fn severity(self) -> Severity {
        match self {
            Rule::AcquireReleasePairing => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// Every rule, in rule-number order.
pub const ALL_RULES: &[Rule] = &[
    Rule::UnsafeNeedsSafety,
    Rule::AtomicNeedsOrdering,
    Rule::SeqCstNeedsRationale,
    Rule::BannedConstruct,
    Rule::CrateRootLintHeader,
    Rule::AcquireReleasePairing,
    Rule::GuardEscape,
    Rule::NoPanicHotPath,
];

/// How certain a diagnostic is (serialized into the JSON output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    /// Stable lowercase name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One diagnostic: `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub severity: Severity,
    pub message: String,
}

impl Finding {
    /// Build a finding; the severity is derived from the rule.
    pub fn new(file: &str, line: usize, rule: Rule, message: impl Into<String>) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            severity: rule.severity(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Atomic operations whose call sites must name an ordering.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Free functions whose call sites must name an ordering.
const ATOMIC_FNS: &[&str] = &["fence", "compiler_fence"];

/// Audit one lexed file. `file` is the path used in diagnostics.
///
/// Convenience wrapper over [`check_parsed`] that parses internally; the
/// two-pass workspace driver parses once and calls [`check_parsed`] directly.
pub fn check_file(file: &str, lexed: &LexedFile, kind: FileKind) -> Vec<Finding> {
    let parsed = crate::parse::parse_lexed(lexed.clone(), kind == FileKind::Test);
    check_parsed(file, &parsed, kind)
}

/// Audit one parsed file with the per-file rules (1–5). Test scoping uses the
/// parser's item-accurate regions: a `#[cfg(test)]` module at any depth, a
/// `#[test]` fn, or a `#[cfg(test)]` impl block.
pub fn check_parsed(file: &str, parsed: &ParsedFile, kind: FileKind) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lexed = &parsed.lexed;
    let exempt = |i: usize| kind == FileKind::Test || parsed.line_in_test(i);

    check_unsafe_sites(file, lexed, &mut findings);
    check_atomics(file, lexed, &exempt, &mut findings);
    for i in 0..lexed.lines.len() {
        if !exempt(i) {
            check_seqcst(file, lexed, i, &mut findings);
        }
        check_banned(file, lexed, i, exempt(i), &mut findings);
    }
    if kind == FileKind::CrateRoot {
        check_lint_header(file, lexed, &mut findings);
    }
    findings
}

/// Convenience for tests and fixtures: lex + check a source string with every
/// rule that can run on a single file (the per-file rules 1–5).
pub fn check_source(file: &str, source: &str, kind: FileKind) -> Vec<Finding> {
    check_file(file, &crate::lexer::lex(source), kind)
}

// ---------------------------------------------------------------------------
// Rule 1: unsafe sites
// ---------------------------------------------------------------------------

fn check_unsafe_sites(file: &str, lexed: &LexedFile, findings: &mut Vec<Finding>) {
    for i in 0..lexed.lines.len() {
        let code = lexed.code(i);
        for col in word_positions(code, "unsafe") {
            if is_fn_pointer_type(lexed, i, col) {
                continue;
            }
            if !has_annotation(lexed, i, &["SAFETY:", "# Safety"]) {
                let what = site_kind(lexed, i, col);
                findings.push(Finding::new(
                    file,
                    i + 1,
                    Rule::UnsafeNeedsSafety,
                    format!("`{what}` without an immediately preceding `// SAFETY:` justification"),
                ));
            }
        }
    }
}

/// Human label for the unsafe site (block / fn / impl / trait).
fn site_kind(lexed: &LexedFile, line: usize, col: usize) -> String {
    match next_word_after(lexed, line, col + "unsafe".len()) {
        Some(w) if w == "fn" => "unsafe fn".to_string(),
        Some(w) if w == "impl" => "unsafe impl".to_string(),
        Some(w) if w == "trait" => "unsafe trait".to_string(),
        Some(w) if w == "extern" => "unsafe extern".to_string(),
        _ => "unsafe block".to_string(),
    }
}

/// `drop_fn: unsafe fn(*mut u8)` — `unsafe fn` in *type* position is not an
/// unsafe site. Detect it from the token before `unsafe`.
fn is_fn_pointer_type(lexed: &LexedFile, line: usize, col: usize) -> bool {
    if next_word_after(lexed, line, col + "unsafe".len()).as_deref() != Some("fn") {
        return false;
    }
    // Scan backwards (same line, then previous lines) for the last
    // non-whitespace character before `unsafe`.
    let before: Option<char> = {
        let this = &lexed.code(line)[..col];
        let mut found = this.chars().rev().find(|c| !c.is_whitespace());
        let mut l = line;
        while found.is_none() && l > 0 {
            l -= 1;
            found = lexed.code(l).chars().rev().find(|c| !c.is_whitespace());
        }
        found
    };
    matches!(
        before,
        Some(':') | Some('(') | Some(',') | Some('<') | Some('&') | Some('=') | Some('>')
    )
}

// ---------------------------------------------------------------------------
// Rule 2: atomic orderings
// ---------------------------------------------------------------------------

fn check_atomics(
    file: &str,
    lexed: &LexedFile,
    exempt: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for i in 0..lexed.lines.len() {
        if exempt(i) {
            continue;
        }
        let code = lexed.code(i);
        for m in ATOMIC_METHODS {
            let pat = format!(".{m}(");
            let mut start = 0;
            while let Some(pos) = code[start..].find(&pat) {
                let at = start + pos;
                start = at + pat.len();
                // The char after the method name must be the `(` from the
                // pattern itself; reject `.load_lo(` style longer names.
                let name_end = at + 1 + m.len();
                if code[at + 1..name_end] != **m {
                    continue;
                }
                check_ordering_in_args(file, lexed, i, name_end, m, findings);
            }
        }
        for f in ATOMIC_FNS {
            for col in word_positions(code, f) {
                let after = col + f.len();
                if code[after..].starts_with('(') {
                    check_ordering_in_args(file, lexed, i, after, f, findings);
                }
            }
        }
    }
}

/// Collect the parenthesized argument span starting at the `(` at
/// `(line, col)` and require it to name an ordering.
fn check_ordering_in_args(
    file: &str,
    lexed: &LexedFile,
    line: usize,
    col: usize,
    what: &str,
    findings: &mut Vec<Finding>,
) {
    let span = paren_span(lexed, line, col);
    if span.to_lowercase().contains("order") {
        return;
    }
    // Zero-arg `.load()` etc. is some other type's method; and a wrapper
    // whose ordering is fixed inside the callee is justified by an
    // `// ORDERING:` comment at the call site.
    if span.trim().is_empty() || has_annotation(lexed, line, &["ORDERING:"]) {
        return;
    }
    findings.push(Finding::new(
        file,
        line + 1,
        Rule::AtomicNeedsOrdering,
        format!("atomic `{what}` call does not name an explicit `Ordering` at the site"),
    ));
}

/// The text between the `(` at (line, col) and its matching `)`, possibly
/// spanning lines. Unbalanced input returns what was collected.
fn paren_span(lexed: &LexedFile, line: usize, col: usize) -> String {
    let mut depth = 0i32;
    let mut out = String::new();
    let mut first = true;
    for i in line..lexed.lines.len().min(line + 32) {
        let code = lexed.code(i);
        let chars: Box<dyn Iterator<Item = char>> = if first {
            Box::new(code[col.min(code.len())..].chars())
        } else {
            Box::new(code.chars())
        };
        for c in chars {
            match c {
                '(' => {
                    depth += 1;
                    if depth > 1 {
                        out.push(c);
                    }
                }
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return out;
                    }
                    out.push(c);
                }
                _ => {
                    if depth >= 1 {
                        out.push(c);
                    }
                }
            }
        }
        out.push('\n');
        first = false;
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 3: SeqCst allowlist
// ---------------------------------------------------------------------------

fn check_seqcst(file: &str, lexed: &LexedFile, i: usize, findings: &mut Vec<Finding>) {
    if word_positions(lexed.code(i), "SeqCst").is_empty() {
        return;
    }
    if has_annotation(lexed, i, &["ORDERING:"]) {
        return;
    }
    findings.push(Finding::new(
        file,
        i + 1,
        Rule::SeqCstNeedsRationale,
        "`SeqCst` without an `// ORDERING:` rationale (same line or immediately above)",
    ));
}

// ---------------------------------------------------------------------------
// Rule 4: banned constructs
// ---------------------------------------------------------------------------

fn check_banned(
    file: &str,
    lexed: &LexedFile,
    i: usize,
    test_exempt: bool,
    findings: &mut Vec<Finding>,
) {
    let code = lexed.code(i);
    let mut flag = |what: &str| {
        if !has_annotation(lexed, i, &["AUDIT:"]) {
            findings.push(Finding::new(
                file,
                i + 1,
                Rule::BannedConstruct,
                format!("`{what}` without an `// AUDIT:` justification"),
            ));
        }
    };
    if !word_positions(code, "transmute").is_empty() {
        flag("transmute");
    }
    if has_word_pair(code, "static", "mut") {
        flag("static mut");
    }
    if !test_exempt && (code.contains("#[allow(") || code.contains("#![allow(")) {
        flag("#[allow]");
    }
}

fn has_word_pair(code: &str, a: &str, b: &str) -> bool {
    for col in word_positions(code, a) {
        let rest = code[col + a.len()..].trim_start();
        if rest.starts_with(b)
            && !rest[b.len()..]
                .chars()
                .next()
                .map(|c| c.is_alphanumeric() || c == '_')
                .unwrap_or(false)
        {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 5: crate-root lint header
// ---------------------------------------------------------------------------

fn check_lint_header(file: &str, lexed: &LexedFile, findings: &mut Vec<Finding>) {
    let ok = lexed.lines.iter().any(|l| {
        l.code.contains("forbid(unsafe_code)") || l.code.contains("unsafe_op_in_unsafe_fn")
    });
    if !ok {
        findings.push(Finding::new(
            file,
            1,
            Rule::CrateRootLintHeader,
            "crate root must carry `#![forbid(unsafe_code)]` or \
             `#![deny(unsafe_op_in_unsafe_fn)]`",
        ));
    }
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Byte offsets of whole-word occurrences of `word` in `code`.
fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        start = at + word.len();
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .map(|c| c.is_alphanumeric() || c == '_')
                .unwrap_or(false);
        let after_ok = !code[at + word.len()..]
            .chars()
            .next()
            .map(|c| c.is_alphanumeric() || c == '_')
            .unwrap_or(false);
        if before_ok && after_ok {
            out.push(at);
        }
    }
    out
}

/// First word after byte offset `col` on `line` (crossing line boundaries).
fn next_word_after(lexed: &LexedFile, line: usize, col: usize) -> Option<String> {
    let mut l = line;
    let mut c = col;
    loop {
        let code = lexed.code(l);
        let rest: String = code.get(c..).unwrap_or("").to_string();
        let trimmed = rest.trim_start();
        if !trimmed.is_empty() {
            let word: String = trimmed
                .chars()
                .take_while(|ch| ch.is_alphanumeric() || *ch == '_')
                .collect();
            return Some(if word.is_empty() {
                trimmed.chars().take(1).collect()
            } else {
                word
            });
        }
        l += 1;
        c = 0;
        if l >= lexed.lines.len() {
            return None;
        }
    }
}

/// Whether line `i` carries one of `markers` in its own comment or in the
/// contiguous comment/attribute block immediately above it. A blank,
/// comment-free line breaks the association.
///
/// This is the shared annotation grammar for `SAFETY:` / `ORDERING:` /
/// `AUDIT:` / `ESCAPE:` / `HOT:` markers (see `docs/CORRECTNESS.md`).
pub(crate) fn has_annotation(lexed: &LexedFile, i: usize, markers: &[&str]) -> bool {
    let hit = |text: &str| markers.iter().any(|m| text.contains(m));
    if hit(lexed.comment(i)) {
        return true;
    }
    let mut l = i;
    while l > 0 {
        l -= 1;
        let code = lexed.code(l).trim();
        let comment = lexed.comment(l);
        if hit(comment) {
            return true;
        }
        let is_attr = code.starts_with("#[") || code.starts_with("#![");
        let is_comment_only = code.is_empty() && !comment.is_empty();
        if !(is_attr || is_comment_only) {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Finding> {
        check_source("fixture.rs", src, FileKind::Normal)
    }

    fn rules(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    // --- rule 1 -----------------------------------------------------------

    #[test]
    fn bare_unsafe_block_is_flagged() {
        let f = check("fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n");
        assert_eq!(rules(&f), vec![Rule::UnsafeNeedsSafety]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn safety_comment_above_clears_a_block() {
        let f =
            check("fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid.\n    unsafe { *p }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn safety_comment_on_same_line_clears_a_block() {
        let f = check("fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: p is valid.\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn blank_line_breaks_the_association() {
        let f = check(
            "// SAFETY: stale justification.\n\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        assert_eq!(rules(&f), vec![Rule::UnsafeNeedsSafety]);
    }

    #[test]
    fn attributes_between_comment_and_site_are_skipped() {
        let f = check("// SAFETY: fine.\n#[inline]\nunsafe fn g() {}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn doc_safety_section_clears_an_unsafe_fn() {
        let f = check("/// Does a thing.\n///\n/// # Safety\n/// p must be valid.\npub unsafe fn g(p: *const u8) {}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_impl_needs_safety() {
        let f = check("struct S;\nunsafe impl Send for S {}\n");
        assert_eq!(rules(&f), vec![Rule::UnsafeNeedsSafety]);
        assert!(f[0].message.contains("unsafe impl"));
    }

    #[test]
    fn fn_pointer_type_is_not_a_site() {
        let f = check("struct G {\n    drop_fn: unsafe fn(*mut u8),\n}\nfn t(f: unsafe fn(u8), g: Option<unsafe fn()>) {}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let f = check("// this mentions unsafe code\nlet s = \"unsafe { }\";\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn multiline_block_comment_above_counts() {
        let f = check("/* SAFETY: the pointer\n   is valid here. */\nunsafe fn g() {}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    // --- rule 2 -----------------------------------------------------------

    #[test]
    fn atomic_call_without_ordering_is_flagged() {
        let f = check(
            "use std::sync::atomic::Ordering::Relaxed;\nfn f(x: &AtomicU64) { x.load(Relaxed); }\n",
        );
        assert_eq!(rules(&f), vec![Rule::AtomicNeedsOrdering]);
    }

    #[test]
    fn atomic_call_with_ordering_path_is_clean() {
        let f = check("fn f(x: &AtomicU64) { x.store(1, Ordering::Release); }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn forwarded_order_parameter_is_clean() {
        let f = check("fn load(&self, order: Ordering) -> u64 { self.lo.load(order) }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn multiline_compare_exchange_is_scanned_whole() {
        let clean = check("x.compare_exchange(\n    a,\n    b,\n    Ordering::AcqRel,\n    Ordering::Acquire,\n);\n");
        assert!(clean.is_empty(), "{clean:?}");
        let dirty = check("x.compare_exchange(\n    a,\n    b,\n    AcqRel,\n    Acquire,\n);\n");
        assert_eq!(rules(&dirty), vec![Rule::AtomicNeedsOrdering]);
    }

    #[test]
    fn longer_method_names_do_not_match() {
        // `.load_lo(x)` must not be treated as `.load(`.
        let f = check("fn f(p: &Pair) { p.load_lo(k); p.swap_remove(1); }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn fence_requires_ordering() {
        assert!(check("fence(Ordering::Release);\n").is_empty());
        assert_eq!(
            rules(&check("fence(Release);\n")),
            vec![Rule::AtomicNeedsOrdering]
        );
    }

    #[test]
    fn ordering_annotation_justifies_fixed_ordering_callee() {
        // The repo's dw-CAS wrapper takes no `Ordering` parameter — the
        // ordering is fixed inside the callee and justified at the call site.
        let f = check("// ORDERING: AcqRel/Acquire fixed inside AtomicPair.\nlet r = pair.compare_exchange(cur, next);\n");
        assert!(f.is_empty(), "{f:?}");
        let bare = check("let r = pair.compare_exchange(cur, next);\n");
        assert_eq!(rules(&bare), vec![Rule::AtomicNeedsOrdering]);
    }

    #[test]
    fn atomics_in_cfg_test_module_are_exempt() {
        let f = check("#[cfg(test)]\nmod tests {\n    fn f(x: &AtomicU64) { x.load(Relaxed); }\n}\nfn g(x: &AtomicU64) { x.load(Relaxed); }\n");
        assert_eq!(rules(&f), vec![Rule::AtomicNeedsOrdering]);
        assert_eq!(f[0].line, 5, "only the non-test site is flagged");
    }

    // --- rule 3 -----------------------------------------------------------

    #[test]
    fn seqcst_without_rationale_is_flagged() {
        let f = check("fn f(x: &AtomicU64) { x.load(Ordering::SeqCst); }\n");
        assert_eq!(rules(&f), vec![Rule::SeqCstNeedsRationale]);
    }

    #[test]
    fn seqcst_with_ordering_rationale_is_clean() {
        let detached = check("// ORDERING: totally ordered against the resizer scan.\nfn f(x: &AtomicU64) -> u64 {\n    x.load(Ordering::SeqCst)\n}\n");
        assert!(!detached.is_empty(), "rationale above the fn, not the site");
        let at_site = check(
            "fn f(x: &AtomicU64) -> u64 {\n    // ORDERING: totally ordered against the resizer scan.\n    x.load(Ordering::SeqCst)\n}\n",
        );
        assert!(at_site.is_empty(), "{at_site:?}");
    }

    #[test]
    fn seqcst_in_cfg_test_module_is_exempt() {
        let f = check("#[cfg(test)]\nmod tests {\n    fn f(x: &AtomicU64) { x.load(Ordering::SeqCst); }\n}\nfn g(x: &AtomicU64) { x.load(Ordering::SeqCst); }\n");
        assert_eq!(rules(&f), vec![Rule::SeqCstNeedsRationale]);
        assert_eq!(f[0].line, 5, "only the non-test site is flagged");
    }

    #[test]
    fn seqcst_in_test_file_is_exempt() {
        let f = check_source(
            "tests/x.rs",
            "fn f(x: &AtomicU64) { x.load(Ordering::SeqCst); }\n",
            FileKind::Test,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    // --- rule 4 -----------------------------------------------------------

    #[test]
    fn transmute_needs_audit_tag() {
        assert_eq!(
            rules(&check("let y = std::mem::transmute::<u32, f32>(x);\n")),
            vec![Rule::BannedConstruct]
        );
        assert!(check("// AUDIT: bit-identical reinterpretation, layout checked above.\nlet y = std::mem::transmute::<u32, f32>(x);\n").is_empty());
    }

    #[test]
    fn static_mut_needs_audit_tag() {
        assert_eq!(
            rules(&check("static mut COUNTER: u64 = 0;\n")),
            vec![Rule::BannedConstruct]
        );
        assert!(check("static muted: u64 = 0;\n").is_empty());
    }

    #[test]
    fn allow_attr_needs_audit_tag_outside_tests() {
        assert_eq!(
            rules(&check("#[allow(clippy::too_many_arguments)]\nfn f() {}\n")),
            vec![Rule::BannedConstruct]
        );
        assert!(check("// AUDIT: allow(lint) — the arg list mirrors the paper's signature.\n#[allow(clippy::too_many_arguments)]\nfn f() {}\n").is_empty());
        assert!(check("#[cfg(test)]\nmod tests {\n    #[allow(clippy::assertions_on_constants)]\n    fn f() {}\n}\n").is_empty());
    }

    // --- rule 5 -----------------------------------------------------------

    #[test]
    fn crate_root_without_header_is_flagged() {
        let f = check_source("src/lib.rs", "pub fn x() {}\n", FileKind::CrateRoot);
        assert_eq!(rules(&f), vec![Rule::CrateRootLintHeader]);
        assert!(check_source(
            "src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn x() {}\n",
            FileKind::CrateRoot
        )
        .is_empty());
        assert!(check_source(
            "src/lib.rs",
            "#![deny(unsafe_op_in_unsafe_fn)]\npub fn x() {}\n",
            FileKind::CrateRoot
        )
        .is_empty());
    }

    #[test]
    fn header_in_a_comment_does_not_count() {
        let f = check_source(
            "src/lib.rs",
            "// #![forbid(unsafe_code)]\npub fn x() {}\n",
            FileKind::CrateRoot,
        );
        assert_eq!(rules(&f), vec![Rule::CrateRootLintHeader]);
    }

    // --- composite fixture ------------------------------------------------

    #[test]
    fn deliberately_bad_fixture_produces_every_rule() {
        let bad = r#"
fn f(p: *const u8, x: &AtomicU64) -> u8 {
    x.store(1, Relaxed);
    x.fetch_add(1, Ordering::SeqCst);
    unsafe { *p }
}
#[allow(dead_code)]
static mut GLOBAL: u64 = 0;
"#;
        let f = check_source("src/lib.rs", bad, FileKind::CrateRoot);
        let got = rules(&f);
        for want in [
            Rule::UnsafeNeedsSafety,
            Rule::AtomicNeedsOrdering,
            Rule::SeqCstNeedsRationale,
            Rule::BannedConstruct,
            Rule::CrateRootLintHeader,
        ] {
            assert!(got.contains(&want), "missing {want:?} in {f:?}");
        }
    }
}
