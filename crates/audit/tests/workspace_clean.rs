//! The self-gate: re-audit the whole workspace on every `cargo test` run.
//!
//! This is what turns `dlht_audit` from a CI convenience into an invariant:
//! a PR cannot land an unjustified `unsafe` block, an implicit atomic
//! ordering, or a stray `SeqCst` without this test going red.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/audit -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/audit has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_findings() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let findings = dlht_audit::audit_workspace(&root).expect("audit IO");
    if !findings.is_empty() {
        let mut msg = format!("{} audit finding(s):\n", findings.len());
        for f in &findings {
            msg.push_str(&format!("  {f}\n"));
        }
        panic!("{msg}");
    }
}

#[test]
fn a_planted_violation_is_caught() {
    // The acceptance fixture: a deliberately bad file must produce findings
    // (i.e. the binary would exit non-zero on a workspace containing it).
    let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let findings =
        dlht_audit::check_source("crates/x/src/planted.rs", bad, dlht_audit::FileKind::Normal);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == dlht_audit::Rule::UnsafeNeedsSafety),
        "planted violation was not caught: {findings:?}"
    );
}
