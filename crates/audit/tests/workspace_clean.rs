//! The self-gate: re-audit the whole workspace on every `cargo test` run.
//!
//! This is what turns `dlht_audit` from a CI convenience into an invariant:
//! a PR cannot land an unjustified `unsafe` block, an implicit atomic
//! ordering, a one-sided release/acquire pair, a guard-escaping raw-pointer
//! API, or a panicking hot path without this test going red.
//!
//! The `planted_*` tests are per-rule acceptance fixtures: each plants a
//! deliberate violation and asserts the rule fires (so a regression in the
//! analyzer itself also goes red, not quietly green).

use dlht_audit::{AnalyzedFile, FileKind, Finding, Rule};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/audit -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/audit has a workspace root two levels up")
        .to_path_buf()
}

/// Run the cross-file rules over in-memory sources.
fn crossfile(files: &[(&str, FileKind, &str)]) -> Vec<Finding> {
    let analyzed: Vec<AnalyzedFile> = files
        .iter()
        .map(|(path, kind, src)| AnalyzedFile {
            path: path.to_string(),
            kind: *kind,
            parsed: dlht_audit::parse::parse_source(src, *kind == FileKind::Test),
        })
        .collect();
    let inv = dlht_audit::inventory::build(&analyzed);
    dlht_audit::crossfile::check_crossfile(&analyzed, &inv)
}

#[test]
fn workspace_has_zero_non_baselined_findings() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let findings = dlht_audit::audit_workspace(&root).expect("audit IO");
    let baseline = dlht_audit::Baseline::load(&root.join(dlht_audit::baseline::DEFAULT_FILE))
        .expect("audit.baseline.json parses");
    let (new, _baselined) = baseline.partition(&findings);
    if !new.is_empty() {
        let mut msg = format!("{} non-baselined audit finding(s):\n", new.len());
        for f in &new {
            msg.push_str(&format!("  {f}\n"));
        }
        panic!("{msg}");
    }
}

#[test]
fn baseline_entries_are_not_stale() {
    // Every baseline entry must still match a real finding; a fixed finding
    // leaves its entry behind otherwise, silently widening the suppression.
    let root = workspace_root();
    let findings = dlht_audit::audit_workspace(&root).expect("audit IO");
    let baseline = dlht_audit::Baseline::load(&root.join(dlht_audit::baseline::DEFAULT_FILE))
        .expect("audit.baseline.json parses");
    let stale: Vec<_> = baseline
        .entries
        .iter()
        .filter(|e| {
            !findings
                .iter()
                .any(|f| e.file == f.file && e.rule == f.rule.name() && e.message == f.message)
        })
        .collect();
    assert!(
        stale.is_empty(),
        "stale baseline entries (fix was landed; run --update-baseline): {stale:?}"
    );
}

#[test]
fn planted_unsafe_violation_is_caught() {
    // The original acceptance fixture: a deliberately bad file must produce
    // findings (i.e. the binary would exit non-zero on a workspace
    // containing it).
    let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let findings = dlht_audit::check_source("crates/x/src/planted.rs", bad, FileKind::Normal);
    assert!(
        findings.iter().any(|f| f.rule == Rule::UnsafeNeedsSafety),
        "planted violation was not caught: {findings:?}"
    );
}

#[test]
fn planted_acquire_release_pairing_violation_is_caught() {
    // A Release store whose field is never loaded with Acquire anywhere.
    let bad = "struct S { ready: AtomicBool }\n\
               impl S { fn publish(&self) { self.ready.store(true, Ordering::Release); } }\n\
               fn check(s: &S) -> bool { s.ready.load(Ordering::Relaxed) }\n";
    let findings = crossfile(&[("crates/x/src/planted.rs", FileKind::Normal, bad)]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::AcquireReleasePairing
                && f.message.contains("no Acquire-side load")),
        "planted one-sided release was not caught: {findings:?}"
    );
}

#[test]
fn planted_guard_escape_violation_is_caught() {
    // A plain-pub raw-pointer return in crates/core with neither a &Guard
    // parameter nor an ESCAPE: justification.
    let bad = "impl T { pub fn leak(&self) -> *mut u8 { self.p } }\n";
    let findings = crossfile(&[("crates/core/src/planted.rs", FileKind::Normal, bad)]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::GuardEscape && f.message.contains("`leak`")),
        "planted guard escape was not caught: {findings:?}"
    );
}

#[test]
fn planted_no_panic_hot_path_violation_is_caught() {
    // A HOT-tagged function that unwraps and does bare indexing.
    let bad = "// HOT: planted.\n\
               fn decode(buf: &[u8]) -> u8 {\n\
                   let first = buf.first().unwrap();\n\
                   buf[1].wrapping_add(*first)\n\
               }\n";
    let findings = crossfile(&[("crates/x/src/planted.rs", FileKind::Normal, bad)]);
    let hot: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::NoPanicHotPath)
        .collect();
    assert!(
        hot.iter().any(|f| f.message.contains("`.unwrap()`"))
            && hot
                .iter()
                .any(|f| f.message.contains("bare slice indexing")),
        "planted hot-path panics were not caught: {findings:?}"
    );
}

#[test]
fn json_diagnostics_golden_round_trip() {
    // The checked-in golden file pins the `dlht-audit/v2` wire format: a
    // formatting or schema drift shows up as a byte-level diff here.
    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden_diagnostics.json");
    let expected = [
        (
            Finding::new(
                "crates/core/src/table.rs",
                42,
                Rule::NoPanicHotPath,
                "`.unwrap()` in hot-path fn `probe` (tagged `// HOT:`)",
            ),
            false,
        ),
        (
            Finding::new(
                "crates/epoch/src/lib.rs",
                7,
                Rule::GuardEscape,
                "pub fn `peek` returns a raw pointer but takes no `&Guard`-typed \
                 parameter and carries no `// ESCAPE:` justification",
            ),
            true,
        ),
        (
            Finding::new(
                "crates/core/src/index.rs",
                9,
                Rule::AcquireReleasePairing,
                "atomic field `next` has a Release-side store but no Acquire-side \
                 load anywhere in the workspace",
            ),
            false,
        ),
    ];
    let refs: Vec<(&Finding, bool)> = expected.iter().map(|(f, b)| (f, *b)).collect();
    let serialized = dlht_audit::json::findings_to_json(&refs);

    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&golden_path, &serialized).expect("write golden");
    }
    let golden = std::fs::read_to_string(&golden_path).expect(
        "tests/golden_diagnostics.json missing; regenerate with \
         GOLDEN_UPDATE=1 cargo test -p dlht-audit json_diagnostics_golden_round_trip",
    );
    assert_eq!(
        serialized, golden,
        "diagnostics serialization drifted from the golden file"
    );
    let parsed = dlht_audit::json::findings_from_json(&golden).expect("golden parses");
    assert_eq!(parsed, expected, "golden file does not round-trip");
}
