//! Small self-contained concurrency utilities shared by every DLHT crate.
//!
//! The repository builds in fully offline environments, so the usual external
//! crates are replaced by thin stand-ins with the same call-site API:
//!
//! * [`CachePadded`] — `crossbeam_utils::CachePadded` (alignment-based false
//!   sharing avoidance).
//! * [`Mutex`] / [`RwLock`] — `parking_lot`-style locks (no poisoning, guards
//!   returned directly) layered over `std::sync`.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// splitmix64 — the tiny deterministic generator shared by the repository's
/// offline property tests (the proptest replacement). One step of Steele et
/// al.'s SplitMix64; pass a mutable seed and call repeatedly.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scale an iteration count down when running under Miri.
///
/// Miri interprets every memory access, so the multi-thread stress loops that
/// finish in milliseconds natively would run for hours. Tests on the curated
/// Miri list (see `docs/CORRECTNESS.md`) wrap their round counts in this so
/// the same test body exercises the same interleavings at a tractable scale:
/// natively the count passes through untouched; under Miri it is divided by
/// 64 (but never below 1).
#[inline]
pub fn miri_scaled(n: u64) -> u64 {
    if cfg!(miri) {
        (n / 64).max(1)
    } else {
        n
    }
}

/// Pads and aligns a value to (at least) one cache line so that adjacent
/// values never share a line. 128 bytes covers the two-line prefetcher pairs
/// on modern x86 and the 128-byte lines on some ARM parts.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` to its own cache line(s).
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

/// Mutual-exclusion lock whose `lock()` returns the guard directly (a panic
/// while holding the lock does not poison it for later users).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_line_aligned_and_transparent() {
        let p = CachePadded::new(42u64);
        assert_eq!(*p, 42);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(p.into_inner(), 42);
        let mut m = CachePadded::new(vec![1, 2]);
        m.push(3);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn miri_scaled_passes_through_natively() {
        if cfg!(miri) {
            assert_eq!(miri_scaled(6_400), 100);
            assert_eq!(miri_scaled(10), 1);
            assert_eq!(miri_scaled(0), 1);
        } else {
            assert_eq!(miri_scaled(6_400), 6_400);
            assert_eq!(miri_scaled(10), 10);
            assert_eq!(miri_scaled(0), 0);
        }
    }

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(String::from("a"));
        rw.write().push('b');
        assert_eq!(rw.read().as_str(), "ab");
    }

    #[test]
    fn locks_are_not_poisoned_by_panics() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
