//! wyhash — the paper's preferred "real" hash function (§3.4.3, Table 2).
//!
//! This is a from-scratch implementation of the wyhash-final style
//! multiply-fold construction. It follows the published algorithm's structure
//! (secret constants, `wymix` folding, 48-byte bulk loop, 16-byte tail
//! handling) but is not bit-for-bit validated against the upstream C test
//! vectors; DLHT only requires determinism and good avalanche/distribution,
//! which the unit and property tests below assert.

use crate::mix::wymix;
use crate::Hasher64;

/// Default wyhash secret (the published `_wyp` parameters).
const P0: u64 = 0x2d35_8dcc_aa6c_78a5;
const P1: u64 = 0x8bb8_4b93_962e_acc9;
const P2: u64 = 0x4b33_a62e_d433_d4a3;
const P3: u64 = 0x4d5a_2da5_1de1_aa47;

/// wyhash 64-bit hasher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WyHash;

#[inline(always)]
fn read_u64(data: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(buf)
}

#[inline(always)]
fn read_u32(data: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&data[at..at + 4]);
    u32::from_le_bytes(buf) as u64
}

impl WyHash {
    /// The `wyhash64(A, B)` two-word hash from the reference implementation;
    /// used as the fast path for 8-byte keys with a fixed seed.
    #[inline(always)]
    pub fn hash_u64_pair(a: u64, b: u64) -> u64 {
        let a = a ^ P0;
        let b = b ^ P1;
        let (lo, hi) = crate::mix::mum(a, b);
        wymix(lo ^ P0, hi ^ P1)
    }

    /// Full byte-string wyhash with an explicit seed.
    pub fn hash_bytes_seeded(data: &[u8], seed: u64) -> u64 {
        let len = data.len();
        let mut seed = seed ^ wymix(seed ^ P0, P1);
        let (a, b): (u64, u64);

        if len <= 16 {
            if len >= 4 {
                let half = (len >> 3) << 2;
                a = (read_u32(data, 0) << 32) | read_u32(data, half);
                b = (read_u32(data, len - 4) << 32) | read_u32(data, len - 4 - half);
            } else if len > 0 {
                // wyr3: first, middle, last bytes.
                a = ((data[0] as u64) << 16)
                    | ((data[len >> 1] as u64) << 8)
                    | (data[len - 1] as u64);
                b = 0;
            } else {
                a = 0;
                b = 0;
            }
        } else {
            let mut i = len;
            let mut p = 0usize;
            if i > 48 {
                let mut s1 = seed;
                let mut s2 = seed;
                while i > 48 {
                    seed = wymix(read_u64(data, p) ^ P1, read_u64(data, p + 8) ^ seed);
                    s1 = wymix(read_u64(data, p + 16) ^ P2, read_u64(data, p + 24) ^ s1);
                    s2 = wymix(read_u64(data, p + 32) ^ P3, read_u64(data, p + 40) ^ s2);
                    p += 48;
                    i -= 48;
                }
                seed ^= s1 ^ s2;
            }
            while i > 16 {
                seed = wymix(read_u64(data, p) ^ P1, read_u64(data, p + 8) ^ seed);
                p += 16;
                i -= 16;
            }
            a = read_u64(data, len - 16);
            b = read_u64(data, len - 8);
        }

        let a = a ^ P1;
        let b = b ^ seed;
        let (lo, hi) = crate::mix::mum(a, b);
        wymix(lo ^ P0 ^ (len as u64), hi ^ P1)
    }
}

impl Hasher64 for WyHash {
    #[inline(always)]
    fn hash_u64(&self, key: u64) -> u64 {
        Self::hash_u64_pair(key, 0)
    }

    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        Self::hash_bytes_seeded(key, 0)
    }

    fn name(&self) -> &'static str {
        "wyhash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(WyHash.hash_u64(42), WyHash.hash_u64(42));
        assert_eq!(WyHash.hash_bytes(b"hello"), WyHash.hash_bytes(b"hello"));
    }

    #[test]
    fn seed_changes_output() {
        let a = WyHash::hash_bytes_seeded(b"dlht", 0);
        let b = WyHash::hash_bytes_seeded(b"dlht", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_and_short_inputs_differ() {
        let outs = [
            WyHash.hash_bytes(b""),
            WyHash.hash_bytes(b"a"),
            WyHash.hash_bytes(b"ab"),
            WyHash.hash_bytes(b"abc"),
            WyHash.hash_bytes(b"abcd"),
            WyHash.hash_bytes(b"abcde"),
            WyHash.hash_bytes(b"abcdefgh"),
            WyHash.hash_bytes(b"abcdefghabcdefgh"),
            WyHash.hash_bytes(b"abcdefghabcdefghabcdefgh"),
        ];
        let mut dedup = outs.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len(), "collisions among trivial inputs");
    }

    #[test]
    fn bulk_path_covers_long_inputs() {
        let data = vec![0xA5u8; 1024];
        let h1 = WyHash.hash_bytes(&data);
        let mut data2 = data.clone();
        data2[777] ^= 1;
        let h2 = WyHash.hash_bytes(&data2);
        assert_ne!(h1, h2);
    }

    #[test]
    fn avalanche_on_u64_keys() {
        let base = WyHash.hash_u64(0x0123_4567_89ab_cdef);
        for bit in 0..64 {
            let flipped = WyHash.hash_u64(0x0123_4567_89ab_cdef ^ (1 << bit));
            let diff = (base ^ flipped).count_ones();
            assert!(diff >= 10, "bit {bit}: only {diff} output bits changed");
        }
    }

    #[test]
    fn sequential_keys_spread_over_bins() {
        // The property DLHT needs: consecutive keys must not collide into the
        // same bin when reduced modulo a power-of-two-ish bin count.
        let bins = 4096u64;
        let mut histogram = vec![0u32; bins as usize];
        for k in 0..65536u64 {
            histogram[(WyHash.hash_u64(k) % bins) as usize] += 1;
        }
        let max = *histogram.iter().max().unwrap();
        assert!(max < 64, "worst bin got {max} of 65536 keys");
    }
}

#[cfg(test)]
mod proptests {
    //! Deterministic pseudo-random property checks (offline replacement for
    //! the former proptest strategies).

    use super::*;
    use dlht_util::splitmix64 as splitmix;

    fn random_bytes(rng: &mut u64, max_len: usize) -> Vec<u8> {
        let len = splitmix(rng) as usize % max_len;
        (0..len).map(|_| splitmix(rng) as u8).collect()
    }

    #[test]
    fn bytes_hash_is_deterministic() {
        let mut rng = 0x11_u64;
        for _ in 0..512 {
            let data = random_bytes(&mut rng, 256);
            let seed = splitmix(&mut rng);
            assert_eq!(
                WyHash::hash_bytes_seeded(&data, seed),
                WyHash::hash_bytes_seeded(&data, seed)
            );
        }
    }

    #[test]
    fn appending_a_byte_changes_hash() {
        let mut rng = 0x22_u64;
        for _ in 0..512 {
            let data = random_bytes(&mut rng, 128);
            let mut longer = data.clone();
            longer.push(splitmix(&mut rng) as u8);
            // Not a cryptographic guarantee, but collisions here would be
            // astronomically unlikely and would indicate a length-handling bug.
            assert_ne!(WyHash.hash_bytes(&data), WyHash.hash_bytes(&longer));
        }
    }
}
