//! xxHash64 — one of the hash functions the DLHT authors benchmarked before
//! settling on wyhash (§3.4.3).

use crate::Hasher64;

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

/// xxHash64 with seed 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XxHash64;

#[inline(always)]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline(always)]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline(always)]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

#[inline(always)]
fn read_u64(data: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(buf)
}

#[inline(always)]
fn read_u32(data: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&data[at..at + 4]);
    u32::from_le_bytes(buf) as u64
}

impl XxHash64 {
    /// Hash an arbitrary byte string with an explicit seed.
    pub fn hash_bytes_seeded(data: &[u8], seed: u64) -> u64 {
        let len = data.len();
        let mut p = 0usize;
        let mut h: u64;

        if len >= 32 {
            let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
            let mut v2 = seed.wrapping_add(PRIME64_2);
            let mut v3 = seed;
            let mut v4 = seed.wrapping_sub(PRIME64_1);
            while p + 32 <= len {
                v1 = round(v1, read_u64(data, p));
                v2 = round(v2, read_u64(data, p + 8));
                v3 = round(v3, read_u64(data, p + 16));
                v4 = round(v4, read_u64(data, p + 24));
                p += 32;
            }
            h = v1
                .rotate_left(1)
                .wrapping_add(v2.rotate_left(7))
                .wrapping_add(v3.rotate_left(12))
                .wrapping_add(v4.rotate_left(18));
            h = merge_round(h, v1);
            h = merge_round(h, v2);
            h = merge_round(h, v3);
            h = merge_round(h, v4);
        } else {
            h = seed.wrapping_add(PRIME64_5);
        }

        h = h.wrapping_add(len as u64);

        while p + 8 <= len {
            h ^= round(0, read_u64(data, p));
            h = h
                .rotate_left(27)
                .wrapping_mul(PRIME64_1)
                .wrapping_add(PRIME64_4);
            p += 8;
        }
        if p + 4 <= len {
            h ^= read_u32(data, p).wrapping_mul(PRIME64_1);
            h = h
                .rotate_left(23)
                .wrapping_mul(PRIME64_2)
                .wrapping_add(PRIME64_3);
            p += 4;
        }
        while p < len {
            h ^= (data[p] as u64).wrapping_mul(PRIME64_5);
            h = h.rotate_left(11).wrapping_mul(PRIME64_1);
            p += 1;
        }
        avalanche(h)
    }
}

impl Hasher64 for XxHash64 {
    #[inline(always)]
    fn hash_u64(&self, key: u64) -> u64 {
        // Specialized 8-byte path: identical to hashing the LE bytes.
        let mut h = PRIME64_5.wrapping_add(8);
        h ^= round(0, key);
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        avalanche(h)
    }

    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        Self::hash_bytes_seeded(key, 0)
    }

    fn name(&self) -> &'static str {
        "xxhash64"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_path_matches_byte_path() {
        for key in [0u64, 1, 0xdead_beef, u64::MAX, 0x0123_4567_89ab_cdef] {
            assert_eq!(
                XxHash64.hash_u64(key),
                XxHash64.hash_bytes(&key.to_le_bytes()),
                "key {key:#x}"
            );
        }
    }

    #[test]
    fn known_empty_input_vector() {
        // xxh64("") with seed 0 is a widely published constant.
        assert_eq!(XxHash64.hash_bytes(b""), 0xEF46_DB37_51D8_E999);
    }

    #[test]
    fn bulk_and_tail_paths_disagree_on_different_inputs() {
        let long = vec![7u8; 100];
        let mut long2 = long.clone();
        long2[99] = 8;
        assert_ne!(XxHash64.hash_bytes(&long), XxHash64.hash_bytes(&long2));
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(
            XxHash64::hash_bytes_seeded(b"dlht", 0),
            XxHash64::hash_bytes_seeded(b"dlht", 1)
        );
    }

    #[test]
    fn distribution_over_bins() {
        let bins = 1024u64;
        let mut histogram = vec![0u32; bins as usize];
        for k in 0..32768u64 {
            histogram[(XxHash64.hash_u64(k) % bins) as usize] += 1;
        }
        assert!(*histogram.iter().max().unwrap() < 96);
        assert!(*histogram.iter().min().unwrap() > 4);
    }
}
