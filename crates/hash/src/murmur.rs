//! Murmur-style 64-bit hash (MurmurHash2 64A construction plus the Murmur3
//! finalizer for the single-word fast path). One of the candidates evaluated
//! by the DLHT authors (§3.4.3).

use crate::Hasher64;

const M: u64 = 0xc6a4_a793_5bd1_e995;
const R: u32 = 47;
const SEED: u64 = 0x9747_b28c;

/// MurmurHash64A-style hasher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Murmur64;

/// Murmur3's fmix64 finalizer.
#[inline(always)]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

impl Hasher64 for Murmur64 {
    #[inline(always)]
    fn hash_u64(&self, key: u64) -> u64 {
        // Single-word fast path: the fmix64 finalizer provides full avalanche.
        fmix64(key ^ SEED)
    }

    fn hash_bytes(&self, key: &[u8]) -> u64 {
        let len = key.len();
        let mut h: u64 = SEED ^ (len as u64).wrapping_mul(M);

        let chunks = len / 8;
        for i in 0..chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&key[i * 8..i * 8 + 8]);
            let mut k = u64::from_le_bytes(buf);
            k = k.wrapping_mul(M);
            k ^= k >> R;
            k = k.wrapping_mul(M);
            h ^= k;
            h = h.wrapping_mul(M);
        }

        let tail = &key[chunks * 8..];
        if !tail.is_empty() {
            let mut k: u64 = 0;
            for (i, &b) in tail.iter().enumerate() {
                k |= (b as u64) << (8 * i);
            }
            h ^= k;
            h = h.wrapping_mul(M);
        }

        h ^= h >> R;
        h = h.wrapping_mul(M);
        h ^= h >> R;
        h
    }

    fn name(&self) -> &'static str {
        "murmur64"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreads() {
        let a = Murmur64.hash_u64(1);
        let b = Murmur64.hash_u64(2);
        assert_eq!(a, Murmur64.hash_u64(1));
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() >= 16);
    }

    #[test]
    fn tail_bytes_matter() {
        assert_ne!(
            Murmur64.hash_bytes(b"12345678x"),
            Murmur64.hash_bytes(b"12345678y")
        );
        assert_ne!(
            Murmur64.hash_bytes(b"1234567"),
            Murmur64.hash_bytes(b"12345678")
        );
    }

    #[test]
    fn fmix_is_bijective_spot_check() {
        // fmix64 is a bijection; distinct inputs must give distinct outputs.
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            assert!(seen.insert(Murmur64.hash_u64(k)));
        }
    }

    #[test]
    fn distribution_over_bins() {
        let bins = 512u64;
        let mut histogram = vec![0u32; bins as usize];
        for k in 0..16384u64 {
            histogram[(Murmur64.hash_u64(k) % bins) as usize] += 1;
        }
        assert!(*histogram.iter().max().unwrap() < 80);
    }
}
