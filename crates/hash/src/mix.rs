//! Shared 64-bit mixing primitives.

/// 64x64 -> 128 multiply returning (low, high) halves.
#[inline(always)]
pub fn mum(a: u64, b: u64) -> (u64, u64) {
    let r = (a as u128).wrapping_mul(b as u128);
    (r as u64, (r >> 64) as u64)
}

/// wyhash's `_wymix`: multiply-fold of the two 64-bit halves.
#[inline(always)]
pub fn wymix(a: u64, b: u64) -> u64 {
    let (lo, hi) = mum(a, b);
    lo ^ hi
}

/// SplitMix64 / Murmur3-style 64-bit finalizer. Full avalanche on one word.
#[inline(always)]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mum_matches_u128_multiply() {
        let (lo, hi) = mum(u64::MAX, u64::MAX);
        let full = (u64::MAX as u128) * (u64::MAX as u128);
        assert_eq!(lo, full as u64);
        assert_eq!(hi, (full >> 64) as u64);
    }

    #[test]
    fn wymix_is_commutative() {
        for (a, b) in [(1u64, 2u64), (0xdead, 0xbeef), (u64::MAX, 7)] {
            assert_eq!(wymix(a, b), wymix(b, a));
        }
    }

    #[test]
    fn mix64_zero_is_zero() {
        // SplitMix64 finalizer maps 0 to 0; callers that need to avoid the
        // fixed point xor a constant first (as wyhash does).
        assert_eq!(mix64(0), 0);
        assert_ne!(mix64(1), 1);
    }

    #[test]
    fn mix64_avalanche_on_single_bit_flip() {
        let a = mix64(0x1234_5678_9abc_def0);
        let b = mix64(0x1234_5678_9abc_def1);
        let differing = (a ^ b).count_ones();
        assert!(differing >= 16, "only {differing} bits differ");
    }
}
