//! FNV-1a — one of the hash functions the DLHT authors evaluated (§3.4.3).

use crate::Hasher64;

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fnv1a;

impl Hasher64 for Fnv1a {
    #[inline(always)]
    fn hash_u64(&self, key: u64) -> u64 {
        self.hash_bytes(&key.to_le_bytes())
    }

    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        let mut h = OFFSET_BASIS;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    fn name(&self) -> &'static str {
        "fnv1a"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_test_vectors() {
        // Standard FNV-1a 64 vectors.
        assert_eq!(Fnv1a.hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a.hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a.hash_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn u64_path_is_le_bytes() {
        let k = 0x1122_3344_5566_7788u64;
        assert_eq!(Fnv1a.hash_u64(k), Fnv1a.hash_bytes(&k.to_le_bytes()));
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(Fnv1a.hash_bytes(b"ab"), Fnv1a.hash_bytes(b"ba"));
    }
}
