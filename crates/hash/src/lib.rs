//! Hash functions used by DLHT.
//!
//! The paper (§3.4.3) defaults to a plain modulo mapping from key to bin and
//! optionally uses [wyhash] for keys whose low bits are poorly distributed.
//! The authors also benchmarked xxHash, Murmur3 and FNV1 before settling on
//! wyhash; all of those are provided here so the hash-function sensitivity can
//! be reproduced (`cargo bench -p dlht-bench --bench hash_functions`).
//!
//! Two call shapes are supported:
//!
//! * [`Hasher64::hash_u64`] — the hot path for 8-byte inlined keys.
//! * [`Hasher64::hash_bytes`] — used by the Allocator mode for keys larger
//!   than 8 bytes.
//!
//! All hashers are zero-sized, `Copy`, and free of interior state, so a table
//! can embed one by value without enlarging its header.
//!
//! [wyhash]: https://github.com/wangyi-fudan/wyhash

#![forbid(unsafe_code)]

mod fnv;
mod mix;
mod modulo;
mod murmur;
mod wyhash;
mod xxhash;

pub use fnv::Fnv1a;
pub use mix::{mix64, mum, wymix};
pub use modulo::Modulo;
pub use murmur::Murmur64;
pub use wyhash::WyHash;
pub use xxhash::XxHash64;

/// A 64-bit hash function usable for both inlined (`u64`) and byte-slice keys.
pub trait Hasher64: Copy + Send + Sync + 'static {
    /// Hash an 8-byte inlined key.
    fn hash_u64(&self, key: u64) -> u64;

    /// Hash an arbitrary byte string (Allocator-mode keys larger than 8 B).
    fn hash_bytes(&self, key: &[u8]) -> u64;

    /// Short human-readable name used in benchmark output.
    fn name(&self) -> &'static str;
}

/// Runtime-selectable hash function, mirroring the paper's
/// `Hash Function: modulo, wyhash` configuration row (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HashKind {
    /// `bin_id = key % number_of_bins` — the paper's default.
    #[default]
    Modulo,
    /// wyhash, the paper's choice when a real hash function is required.
    WyHash,
    /// xxHash64, evaluated by the authors and kept for sensitivity studies.
    XxHash64,
    /// FNV-1a, evaluated by the authors and kept for sensitivity studies.
    Fnv1a,
    /// Murmur-style 64-bit finalizer hash.
    Murmur64,
}

impl HashKind {
    /// Hash an inlined key with the selected function.
    #[inline]
    pub fn hash_u64(self, key: u64) -> u64 {
        match self {
            HashKind::Modulo => Modulo.hash_u64(key),
            HashKind::WyHash => WyHash.hash_u64(key),
            HashKind::XxHash64 => XxHash64.hash_u64(key),
            HashKind::Fnv1a => Fnv1a.hash_u64(key),
            HashKind::Murmur64 => Murmur64.hash_u64(key),
        }
    }

    /// Hash a byte-string key with the selected function.
    #[inline]
    pub fn hash_bytes(self, key: &[u8]) -> u64 {
        match self {
            HashKind::Modulo => Modulo.hash_bytes(key),
            HashKind::WyHash => WyHash.hash_bytes(key),
            HashKind::XxHash64 => XxHash64.hash_bytes(key),
            HashKind::Fnv1a => Fnv1a.hash_bytes(key),
            HashKind::Murmur64 => Murmur64.hash_bytes(key),
        }
    }

    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            HashKind::Modulo => "modulo",
            HashKind::WyHash => "wyhash",
            HashKind::XxHash64 => "xxhash64",
            HashKind::Fnv1a => "fnv1a",
            HashKind::Murmur64 => "murmur64",
        }
    }

    /// All variants, for sweeps.
    pub fn all() -> [HashKind; 5] {
        [
            HashKind::Modulo,
            HashKind::WyHash,
            HashKind::XxHash64,
            HashKind::Fnv1a,
            HashKind::Murmur64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_named() -> Vec<(&'static str, HashKind)> {
        HashKind::all().iter().map(|k| (k.name(), *k)).collect()
    }

    #[test]
    fn kinds_are_deterministic() {
        for (name, kind) in all_named() {
            for key in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
                assert_eq!(kind.hash_u64(key), kind.hash_u64(key), "{name} key {key}");
            }
            let bytes = b"the quick brown fox jumps over the lazy dog";
            assert_eq!(kind.hash_bytes(bytes), kind.hash_bytes(bytes), "{name}");
        }
    }

    #[test]
    fn non_modulo_kinds_change_most_keys() {
        for (name, kind) in all_named() {
            if kind == HashKind::Modulo {
                continue;
            }
            let changed = (0u64..1024).filter(|&k| kind.hash_u64(k) != k).count();
            assert!(
                changed > 1000,
                "{name} left too many keys unhashed: {changed}"
            );
        }
    }

    #[test]
    fn low_bit_distribution_is_balanced() {
        // With sequential keys, a decent hash function should set the low bit
        // of roughly half of the outputs.
        for (name, kind) in all_named() {
            if kind == HashKind::Modulo {
                continue;
            }
            let ones = (0u64..4096).filter(|&k| kind.hash_u64(k) & 1 == 1).count();
            assert!(
                (1500..=2600).contains(&ones),
                "{name}: low-bit imbalance, {ones}/4096 ones"
            );
        }
    }

    #[test]
    fn bytes_and_u64_agree_on_modulo_identity() {
        assert_eq!(HashKind::Modulo.hash_u64(77), 77);
        assert_eq!(
            HashKind::Modulo.hash_bytes(&77u64.to_le_bytes()),
            HashKind::Modulo.hash_u64(77)
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = HashKind::all().iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
