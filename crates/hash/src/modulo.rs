//! The paper's default "hash": the identity mapping, relying on the table to
//! take `hash % number_of_bins` (§3.4.3).

use crate::Hasher64;

/// Identity hash: `bin_id = key % number_of_bins` is computed by the table.
///
/// This is only appropriate when keys are already well distributed (e.g.
/// pointers or dense integer ids), which the paper's clients rely on; use
/// [`crate::WyHash`] otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Modulo;

impl Hasher64 for Modulo {
    #[inline(always)]
    fn hash_u64(&self, key: u64) -> u64 {
        key
    }

    #[inline]
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        // Fold the bytes into a single word little-endian-wise; for keys up to
        // 8 bytes this is exactly the inlined key value.
        let mut out = [0u8; 8];
        for (i, b) in key.iter().enumerate() {
            out[i % 8] ^= *b;
            if i >= 8 {
                // Cheap rotation so longer keys still involve every byte.
                out.rotate_left(1);
            }
        }
        u64::from_le_bytes(out)
    }

    fn name(&self) -> &'static str {
        "modulo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_on_u64() {
        for k in [0u64, 1, 12345, u64::MAX] {
            assert_eq!(Modulo.hash_u64(k), k);
        }
    }

    #[test]
    fn short_bytes_equal_inlined_key() {
        let key = 0x1122_3344_5566_7788u64;
        assert_eq!(Modulo.hash_bytes(&key.to_le_bytes()), key);
        assert_eq!(Modulo.hash_bytes(&[0x7f]), 0x7f);
    }

    #[test]
    fn long_bytes_do_not_ignore_tail() {
        let a = Modulo.hash_bytes(b"aaaaaaaaaaaaaaaa");
        let b = Modulo.hash_bytes(b"aaaaaaaaaaaaaaab");
        assert_ne!(a, b);
    }
}
