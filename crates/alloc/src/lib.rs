//! Value allocators for DLHT's Allocator mode.
//!
//! The paper's testbed preloads **mimalloc** with 2 MB huge pages and Fig. 14
//! contrasts it against plain `malloc` ("No mimalloc" bar). Neither of those
//! is a Rust crate we take as a dependency; instead this crate provides:
//!
//! * [`SystemAllocator`] — a thin adapter over the global Rust allocator,
//!   playing the role of plain `malloc`.
//! * [`PoolAllocator`] — a sharded, size-classed, slab-backed pool allocator
//!   playing the role of mimalloc: allocations of the hot sizes are served
//!   from per-shard free lists carved out of large slabs, avoiding the global
//!   allocator on the request path.
//! * [`CountingAllocator`] — a wrapper that counts allocations/deallocations,
//!   used by tests and by the power/efficiency model.
//!
//! In Allocator mode DLHT takes one of these "as in C++ containers" (§3.1):
//! every Insert of an out-of-line key/value allocates through it and every
//! Delete eventually releases through it (via the epoch GC).

#![deny(unsafe_op_in_unsafe_fn)]

mod pool;
mod system;

pub use pool::PoolAllocator;
pub use system::SystemAllocator;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Minimum alignment guaranteed by every [`ValueAllocator`].
pub const VALUE_ALIGN: usize = 16;

/// A thread-safe allocator for out-of-line key/value storage.
///
/// Implementors must return `VALUE_ALIGN`-aligned memory and tolerate
/// `dealloc` being called from a different thread than `alloc`.
pub trait ValueAllocator: Send + Sync + 'static {
    /// Allocate `size` bytes (never zero). Returns a non-null pointer or
    /// panics on out-of-memory (matching the paper's in-memory setting where
    /// OOM is fatal).
    fn alloc(&self, size: usize) -> *mut u8;

    /// Release an allocation previously returned by [`ValueAllocator::alloc`]
    /// with the same `size`.
    ///
    /// # Safety
    /// `ptr` must come from `alloc(size)` on this allocator and must not be
    /// used afterwards.
    unsafe fn dealloc(&self, ptr: *mut u8, size: usize);

    /// Human-readable name for benchmark output.
    fn name(&self) -> &'static str;
}

/// Statistics-collecting wrapper around any [`ValueAllocator`].
pub struct CountingAllocator<A: ValueAllocator> {
    inner: A,
    allocs: AtomicU64,
    deallocs: AtomicU64,
    bytes: AtomicU64,
}

impl<A: ValueAllocator> CountingAllocator<A> {
    /// Wrap `inner`.
    pub fn new(inner: A) -> Self {
        CountingAllocator {
            inner,
            allocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Number of `alloc` calls so far.
    pub fn allocs(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Number of `dealloc` calls so far.
    pub fn deallocs(&self) -> u64 {
        self.deallocs.load(Ordering::Relaxed)
    }

    /// Total bytes requested so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Live allocations (allocs minus deallocs).
    pub fn live(&self) -> i64 {
        self.allocs() as i64 - self.deallocs() as i64
    }
}

impl<A: ValueAllocator> ValueAllocator for CountingAllocator<A> {
    fn alloc(&self, size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(size as u64, Ordering::Relaxed);
        self.inner.alloc(size)
    }

    // SAFETY: pure forwarding wrapper — the caller's obligations on `ptr` and
    // `size` are exactly the inner allocator's.
    unsafe fn dealloc(&self, ptr: *mut u8, size: usize) {
        self.deallocs.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `alloc` forwards to `inner.alloc`, so a pointer the caller
        // got from us came from `inner` with the same size.
        unsafe { self.inner.dealloc(ptr, size) }
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Blanket impl so `Arc<A>` can be passed wherever an allocator is expected.
impl<A: ValueAllocator + ?Sized> ValueAllocator for Arc<A> {
    fn alloc(&self, size: usize) -> *mut u8 {
        (**self).alloc(size)
    }

    // SAFETY: pure forwarding wrapper — `Arc` adds sharing, not new invariants.
    unsafe fn dealloc(&self, ptr: *mut u8, size: usize) {
        // SAFETY: `alloc` forwards to the inner allocator, so the caller's
        // pointer/size contract transfers unchanged.
        unsafe { (**self).dealloc(ptr, size) }
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Which allocator to instantiate, mirroring Table 2's
/// `Allocator: mimalloc (2MB pages), malloc` row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocatorKind {
    /// Pooled allocator (mimalloc stand-in) — the paper's default.
    #[default]
    Pool,
    /// The global Rust/system allocator (plain `malloc` stand-in).
    System,
}

impl AllocatorKind {
    /// Instantiate the selected allocator behind a trait object.
    pub fn build(self) -> Arc<dyn ValueAllocator> {
        match self {
            AllocatorKind::Pool => Arc::new(PoolAllocator::new()),
            AllocatorKind::System => Arc::new(SystemAllocator::new()),
        }
    }

    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            AllocatorKind::Pool => "pool(mimalloc-substitute)",
            AllocatorKind::System => "system-malloc",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<A: ValueAllocator>(a: &A) {
        let sizes = [1usize, 8, 16, 24, 100, 256, 1024, 5000, 70_000];
        let mut ptrs = Vec::new();
        for &s in &sizes {
            let p = a.alloc(s);
            assert!(!p.is_null());
            assert_eq!(p as usize % VALUE_ALIGN, 0, "misaligned for size {s}");
            // Touch the whole allocation to catch undersized slabs.
            // SAFETY: `p` was just returned by `alloc(s)`, so `s` bytes are
            // writable.
            unsafe { std::ptr::write_bytes(p, 0xAB, s) };
            ptrs.push((p, s));
        }
        for (p, s) in ptrs {
            // SAFETY: each pointer came from `a.alloc(s)` and is freed once.
            unsafe { a.dealloc(p, s) };
        }
    }

    #[test]
    fn system_allocator_roundtrip() {
        exercise(&SystemAllocator::new());
    }

    #[test]
    fn pool_allocator_roundtrip() {
        exercise(&PoolAllocator::new());
    }

    #[test]
    fn counting_allocator_tracks_usage() {
        let a = CountingAllocator::new(SystemAllocator::new());
        let p1 = a.alloc(64);
        let p2 = a.alloc(128);
        assert_eq!(a.allocs(), 2);
        assert_eq!(a.bytes(), 192);
        assert_eq!(a.live(), 2);
        // SAFETY: both pointers came from `a.alloc` with the same sizes.
        unsafe {
            a.dealloc(p1, 64);
            a.dealloc(p2, 128);
        }
        assert_eq!(a.deallocs(), 2);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn kind_builds_named_allocators() {
        let pool = AllocatorKind::Pool.build();
        let sys = AllocatorKind::System.build();
        assert_ne!(pool.name(), sys.name());
        let p = pool.alloc(40);
        // SAFETY: `p` came from `pool.alloc(40)`.
        unsafe { pool.dealloc(p, 40) };
        let p = sys.alloc(40);
        // SAFETY: `p` came from `sys.alloc(40)`.
        unsafe { sys.dealloc(p, 40) };
    }
}
