//! Sharded, size-classed pool allocator — the repository's stand-in for
//! mimalloc with 2 MB pages (Table 2).
//!
//! Design:
//!
//! * Allocations are rounded up to a power-of-two **size class** between 16 B
//!   and 64 KiB. Larger requests fall through to the system allocator.
//! * Each (shard, class) pair keeps a free list of previously released blocks
//!   and a bump cursor into the most recent **slab** (256 KiB carved from the
//!   system allocator). Freed blocks go back to the free list of the shard
//!   that frees them, giving mimalloc-like thread-local reuse without
//!   thread-local destructors.
//! * Shards are selected by a cheap hash of the calling thread id, so under
//!   the paper's thread counts contention on a shard lock is rare and the
//!   common path is "lock local shard, pop free list".
//!
//! This is intentionally a *pool*: slabs are only returned to the system when
//! the allocator is dropped, mirroring how the paper's benchmarks hold their
//! working set for the whole run.

use crate::{SystemAllocator, ValueAllocator, VALUE_ALIGN};
use dlht_util::{CachePadded, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};

/// Smallest size class (bytes).
const MIN_CLASS_SHIFT: u32 = 4; // 16 B
/// Largest pooled size class (bytes); larger requests use the system path.
const MAX_CLASS_SHIFT: u32 = 16; // 64 KiB
const NUM_CLASSES: usize = (MAX_CLASS_SHIFT - MIN_CLASS_SHIFT + 1) as usize;
/// Bytes carved from the system allocator per slab refill.
const SLAB_BYTES: usize = 256 * 1024;
/// Number of independent shards.
const SHARDS: usize = 16;

struct ClassState {
    /// Recycled blocks ready for reuse.
    free: Vec<*mut u8>,
    /// Bump cursor into the current slab.
    cursor: *mut u8,
    /// Remaining bytes in the current slab.
    remaining: usize,
}

// SAFETY: the raw pointers are plain byte blocks carved from slabs — they own
// no thread-affine state, and they are only touched under the shard lock.
unsafe impl Send for ClassState {}

impl ClassState {
    fn new() -> Self {
        ClassState {
            free: Vec::new(),
            cursor: std::ptr::null_mut(),
            remaining: 0,
        }
    }
}

struct Shard {
    classes: [ClassState; NUM_CLASSES],
}

impl Shard {
    fn new() -> Self {
        Shard {
            classes: std::array::from_fn(|_| ClassState::new()),
        }
    }
}

/// Pooled allocator; see module docs.
pub struct PoolAllocator {
    shards: Box<[CachePadded<Mutex<Shard>>]>,
    backing: SystemAllocator,
    /// Every slab ever allocated, so Drop can return them.
    slabs: Mutex<Vec<(*mut u8, usize)>>,
    pooled_allocs: AtomicU64,
    fallback_allocs: AtomicU64,
}

// SAFETY: every field is either an atomic counter or a Mutex-guarded
// structure; the raw slab pointers inside are only read/written under those
// locks, so the type is safe to move and share across threads.
unsafe impl Send for PoolAllocator {}
// SAFETY: as above — all mutation happens behind Mutexes or atomics.
unsafe impl Sync for PoolAllocator {}

impl Default for PoolAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl PoolAllocator {
    /// Create an empty pool.
    pub fn new() -> Self {
        PoolAllocator {
            shards: (0..SHARDS)
                .map(|_| CachePadded::new(Mutex::new(Shard::new())))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            backing: SystemAllocator::new(),
            slabs: Mutex::new(Vec::new()),
            pooled_allocs: AtomicU64::new(0),
            fallback_allocs: AtomicU64::new(0),
        }
    }

    /// Size class index for `size`, or `None` if it must use the fallback.
    #[inline]
    fn class_of(size: usize) -> Option<usize> {
        let size = size.max(1);
        let shift = usize::BITS - (size - 1).leading_zeros();
        let shift = shift.max(MIN_CLASS_SHIFT);
        if shift > MAX_CLASS_SHIFT {
            None
        } else {
            Some((shift - MIN_CLASS_SHIFT) as usize)
        }
    }

    /// Byte size of class `idx`.
    #[inline]
    fn class_bytes(idx: usize) -> usize {
        1usize << (idx as u32 + MIN_CLASS_SHIFT)
    }

    #[inline]
    fn shard_index() -> usize {
        use std::sync::atomic::AtomicUsize;
        // Cheap, stable per-thread shard selection: threads are numbered in
        // registration order, so consecutive workers spread across shards.
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
        }
        SHARD.with(|s| *s)
    }

    /// Number of allocations served from the pool (vs the fallback path).
    pub fn pooled_allocs(&self) -> u64 {
        self.pooled_allocs.load(Ordering::Relaxed)
    }

    /// Number of allocations that bypassed the pool (oversized requests).
    pub fn fallback_allocs(&self) -> u64 {
        self.fallback_allocs.load(Ordering::Relaxed)
    }

    fn refill(&self, class: &mut ClassState) {
        let slab = self.backing.alloc(SLAB_BYTES);
        self.slabs.lock().push((slab, SLAB_BYTES));
        class.cursor = slab;
        class.remaining = SLAB_BYTES;
    }
}

impl ValueAllocator for PoolAllocator {
    // HOT: per-Put allocation path — must not panic. `shard_index()` and
    // `class_of()` are in range by construction; the `else` arms serve the
    // (unreachable) stray index a full class-sized block from the backing
    // allocator, which stays sound if it is later recycled onto a free list.
    fn alloc(&self, size: usize) -> *mut u8 {
        let Some(class_idx) = Self::class_of(size) else {
            self.fallback_allocs.fetch_add(1, Ordering::Relaxed);
            return self.backing.alloc(size);
        };
        self.pooled_allocs.fetch_add(1, Ordering::Relaxed);
        let block = Self::class_bytes(class_idx);
        let Some(slot) = self.shards.get(Self::shard_index()) else {
            return self.backing.alloc(block);
        };
        let mut shard = slot.lock();
        let Some(class) = shard.classes.get_mut(class_idx) else {
            drop(shard);
            return self.backing.alloc(block);
        };
        if let Some(ptr) = class.free.pop() {
            return ptr;
        }
        if class.remaining < block {
            self.refill(class);
        }
        let ptr = class.cursor;
        // SAFETY: cursor + block stays inside the slab because remaining >= block.
        class.cursor = unsafe { class.cursor.add(block) };
        class.remaining -= block;
        debug_assert_eq!(ptr as usize % VALUE_ALIGN, 0);
        ptr
    }

    // SAFETY: pooled blocks are recycled onto a free list (no memory is
    // touched through `ptr`); oversized blocks forward to the backing
    // allocator they came from.
    // HOT: per-Delete reclamation path — must not panic. The indexes are in
    // range by construction; on the (unreachable) stray index the block is
    // leaked rather than freed, which is memory-safe.
    unsafe fn dealloc(&self, ptr: *mut u8, size: usize) {
        let Some(class_idx) = Self::class_of(size) else {
            // SAFETY: oversized allocations came from the backing allocator.
            unsafe { self.backing.dealloc(ptr, size) };
            return;
        };
        let Some(slot) = self.shards.get(Self::shard_index()) else {
            return;
        };
        let mut shard = slot.lock();
        if let Some(class) = shard.classes.get_mut(class_idx) {
            class.free.push(ptr);
        }
    }

    fn name(&self) -> &'static str {
        "pool(mimalloc-substitute)"
    }
}

impl Drop for PoolAllocator {
    fn drop(&mut self) {
        let mut slabs = self.slabs.lock();
        for (ptr, size) in slabs.drain(..) {
            // SAFETY: slabs were allocated from `backing` with this size and
            // no block can outlive the pool (dealloc only recycles).
            unsafe { self.backing.dealloc(ptr, size) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_mapping() {
        assert_eq!(PoolAllocator::class_of(1), Some(0));
        assert_eq!(PoolAllocator::class_of(16), Some(0));
        assert_eq!(PoolAllocator::class_of(17), Some(1));
        assert_eq!(PoolAllocator::class_of(32), Some(1));
        assert_eq!(PoolAllocator::class_of(1500), Some(7));
        assert_eq!(PoolAllocator::class_bytes(7), 2048);
        assert_eq!(PoolAllocator::class_of(64 * 1024), Some(NUM_CLASSES - 1));
        assert_eq!(PoolAllocator::class_of(64 * 1024 + 1), None);
    }

    #[test]
    fn blocks_are_recycled() {
        let pool = PoolAllocator::new();
        let p1 = pool.alloc(100);
        // SAFETY: `p1` came from `pool.alloc(100)` and is not used after.
        unsafe { pool.dealloc(p1, 100) };
        // Same size class from the same thread should reuse the block.
        let p2 = pool.alloc(120);
        assert_eq!(p1, p2);
        // SAFETY: `p2` came from `pool.alloc(120)` and is not used after.
        unsafe { pool.dealloc(p2, 120) };
    }

    #[test]
    fn oversized_requests_fall_back() {
        let pool = PoolAllocator::new();
        let p = pool.alloc(1 << 20);
        // SAFETY: `p` was just returned by `alloc(1 << 20)`, so the whole
        // range is writable; it is freed once with the same size.
        unsafe { std::ptr::write_bytes(p, 1, 1 << 20) };
        // SAFETY: see above.
        unsafe { pool.dealloc(p, 1 << 20) };
        assert_eq!(pool.fallback_allocs(), 1);
    }

    #[test]
    fn many_small_allocations_do_not_overlap() {
        let pool = PoolAllocator::new();
        let count = dlht_util::miri_scaled(10_000) as usize;
        let mut ptrs: Vec<*mut u8> = (0..count).map(|_| pool.alloc(24)).collect();
        ptrs.sort_unstable();
        ptrs.dedup();
        assert_eq!(ptrs.len(), count, "duplicate pointers handed out");
        for p in ptrs {
            // SAFETY: each pointer came from `pool.alloc(24)`, freed once.
            unsafe { pool.dealloc(p, 24) };
        }
    }

    #[test]
    fn concurrent_alloc_dealloc() {
        use std::sync::Arc;
        let pool = Arc::new(PoolAllocator::new());
        let iters = dlht_util::miri_scaled(2_000) as usize;
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let mut live = Vec::new();
                    for i in 0..iters {
                        let size = 16 + ((i * 7 + t) % 200);
                        let p = pool.alloc(size);
                        // SAFETY: `p` was just returned by `alloc(size)`.
                        unsafe { std::ptr::write_bytes(p, i as u8, size) };
                        live.push((p, size));
                        if i % 3 == 0 {
                            let (p, s) = live.swap_remove(i % live.len());
                            // SAFETY: `(p, s)` was removed from `live`, so it
                            // is freed exactly once with its alloc size.
                            unsafe { pool.dealloc(p, s) };
                        }
                    }
                    for (p, s) in live {
                        // SAFETY: remaining live blocks, each freed once.
                        unsafe { pool.dealloc(p, s) };
                    }
                });
            }
        });
        assert!(pool.pooled_allocs() >= (4 * iters) as u64);
    }
}
