//! Adapter over the global Rust allocator — the "plain malloc" configuration
//! of Fig. 14.

use crate::{ValueAllocator, VALUE_ALIGN};
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};

/// The global allocator exposed through the [`ValueAllocator`] interface.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemAllocator;

impl SystemAllocator {
    /// Create the adapter (zero-sized).
    pub fn new() -> Self {
        SystemAllocator
    }

    #[inline]
    fn layout(size: usize) -> Layout {
        // Round up to the minimum alignment; size 0 is bumped to 1 so the
        // layout stays valid.
        Layout::from_size_align(size.max(1), VALUE_ALIGN).expect("valid layout")
    }
}

impl ValueAllocator for SystemAllocator {
    fn alloc(&self, size: usize) -> *mut u8 {
        let layout = Self::layout(size);
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { alloc(layout) };
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        ptr
    }

    // SAFETY: `Self::layout` is deterministic, so the layout passed here is
    // byte-for-byte the one `alloc` used for this pointer.
    unsafe fn dealloc(&self, ptr: *mut u8, size: usize) {
        // SAFETY: caller contract — ptr came from `alloc(size)` above.
        unsafe { dealloc(ptr, Self::layout(size)) }
    }

    fn name(&self) -> &'static str {
        "system-malloc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sized_requests_are_bumped() {
        let a = SystemAllocator::new();
        let p = a.alloc(0);
        assert!(!p.is_null());
        // SAFETY: `p` came from `a.alloc(0)` and is freed once.
        unsafe { a.dealloc(p, 0) };
    }

    #[test]
    fn alignment_is_at_least_value_align() {
        let a = SystemAllocator::new();
        for size in [1, 7, 16, 33, 1000] {
            let p = a.alloc(size);
            assert_eq!(p as usize % VALUE_ALIGN, 0);
            // SAFETY: `p` came from `a.alloc(size)` and is freed once.
            unsafe { a.dealloc(p, size) };
        }
    }
}
