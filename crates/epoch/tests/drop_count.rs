//! Exact-reclamation accounting for the epoch collector: every retired box
//! is dropped exactly once — through normal advances, orphaned bags, and
//! collector teardown — and nothing is dropped early.
//!
//! The whole file runs under Miri too (it is on the curated list in
//! `docs/CORRECTNESS.md`); `miri_scaled` keeps the multithreaded case
//! tractable there while the native run keeps the full counts.

use dlht_epoch::Collector;
use dlht_util::miri_scaled;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A payload that counts its drops and can detect double-frees: dropping it
/// twice would underflow the live counter and panic.
struct Tracked {
    drops: Arc<AtomicUsize>,
    live: Arc<AtomicUsize>,
}

impl Tracked {
    fn new(drops: &Arc<AtomicUsize>, live: &Arc<AtomicUsize>) -> Box<Self> {
        live.fetch_add(1, Ordering::SeqCst);
        Box::new(Tracked {
            drops: Arc::clone(drops),
            live: Arc::clone(live),
        })
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
        let was = self.live.fetch_sub(1, Ordering::SeqCst);
        assert!(was > 0, "double drop detected");
    }
}

#[test]
fn every_retired_box_drops_exactly_once() {
    let drops = Arc::new(AtomicUsize::new(0));
    let live = Arc::new(AtomicUsize::new(0));
    let c = Arc::new(Collector::new());
    let mut h = c.register().unwrap();

    let total = miri_scaled(300) as usize;
    for i in 0..total {
        h.retire_box(Tracked::new(&drops, &live));
        if i % 5 == 0 {
            h.quiescent();
        }
        h.check_invariants().expect("handle invariants mid-retire");
    }
    // Nothing retired in the current epoch window may have been freed early:
    // whatever is still pending must equal the still-live count.
    assert_eq!(live.load(Ordering::SeqCst), h.pending());
    assert_eq!(drops.load(Ordering::SeqCst) + h.pending(), total);

    // Two more quiescent rounds age every bag out...
    h.quiescent();
    h.quiescent();
    h.quiescent();
    c.check_invariants()
        .expect("collector invariants at quiescence");
    drop(h);
    // ...and teardown reclaims any remainder. Exactly once each.
    drop(c);
    assert_eq!(drops.load(Ordering::SeqCst), total);
    assert_eq!(live.load(Ordering::SeqCst), 0);
}

#[test]
fn orphaned_bags_reclaim_through_surviving_handles() {
    let drops = Arc::new(AtomicUsize::new(0));
    let live = Arc::new(AtomicUsize::new(0));
    let c = Arc::new(Collector::new());
    let mut survivor = c.register().unwrap();

    let per_handle = miri_scaled(64) as usize;
    for _ in 0..4 {
        let mut short = c.register().unwrap();
        for _ in 0..per_handle {
            short.retire_box(Tracked::new(&drops, &live));
        }
        // Dropping the handle orphans its unreclaimed bags.
    }
    c.check_invariants()
        .expect("collector invariants with orphans");

    // The survivor's quiescent cycles advance the epoch and collect orphans.
    for _ in 0..6 {
        survivor.quiescent();
    }
    drop(survivor);
    drop(c);
    assert_eq!(drops.load(Ordering::SeqCst), 4 * per_handle);
    assert_eq!(live.load(Ordering::SeqCst), 0);
}

#[test]
fn multithreaded_churn_loses_and_doubles_nothing() {
    let drops = Arc::new(AtomicUsize::new(0));
    let live = Arc::new(AtomicUsize::new(0));
    let c = Arc::new(Collector::new());
    const THREADS: usize = 4;
    let per_thread = miri_scaled(400) as usize;

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let c = Arc::clone(&c);
            let drops = Arc::clone(&drops);
            let live = Arc::clone(&live);
            s.spawn(move || {
                let mut h = c.register().unwrap();
                for i in 0..per_thread {
                    h.retire_box(Tracked::new(&drops, &live));
                    if i % (3 + t) == 0 {
                        h.quiescent();
                    }
                }
            });
        }
    });
    c.check_invariants()
        .expect("collector invariants after the churn");
    drop(c);
    assert_eq!(drops.load(Ordering::SeqCst), THREADS * per_thread);
    assert_eq!(live.load(Ordering::SeqCst), 0);
}

#[test]
fn deferred_closures_run_exactly_once_at_teardown() {
    let runs = Arc::new(AtomicUsize::new(0));
    let c = Arc::new(Collector::new());
    let mut h = c.register().unwrap();
    let total = miri_scaled(100) as usize;
    for _ in 0..total {
        let runs = Arc::clone(&runs);
        h.defer(move || {
            runs.fetch_add(1, Ordering::SeqCst);
        });
    }
    assert_eq!(runs.load(Ordering::SeqCst), 0, "deferred ran too early");
    drop(h);
    drop(c);
    assert_eq!(runs.load(Ordering::SeqCst), total);
}
