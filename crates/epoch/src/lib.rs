//! Quiescent-state epoch-based reclamation, as described for DLHT's
//! Allocator-mode deletes (§3.2.3):
//!
//! > "we offer an epoch-based GC, for which the client can opt-in. Our GC
//! > remembers the pointers that must be freed. The client periodically
//! > performs a call from all threads to advance the epoch. After moving to a
//! > new epoch, our GC frees the pointers of the previous epoch."
//!
//! The model is deliberately client-driven: threads that use the table
//! register a [`LocalHandle`], retire pointers through it when they delete
//! keys, and periodically call [`LocalHandle::quiescent`] (e.g. once per
//! request batch). Once every registered handle has announced the current
//! epoch, [`Collector::try_advance`] moves the global epoch forward and
//! garbage retired two epochs ago becomes safe to free — at that point no
//! thread can still hold a reference obtained before the retirement.
//!
//! The implementation keeps retired garbage in per-handle bags (no
//! synchronization on the retire path) and only touches shared state on
//! `quiescent`/`try_advance`.

#![deny(unsafe_op_in_unsafe_fn)]

use dlht_util::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of epoch generations garbage is staged across before being freed.
/// Freeing at `current - 2` guarantees every thread has passed through at
/// least one quiescent point since the retirement.
const GENERATIONS: usize = 3;

/// Maximum number of simultaneously registered handles.
pub const MAX_HANDLES: usize = 512;

/// A single piece of retired garbage: either a type-erased pointer plus its
/// deleter, or an arbitrary deferred closure (used when freeing needs context,
/// e.g. DLHT's Allocator mode releasing a record through its value allocator).
enum Garbage {
    Raw {
        ptr: *mut u8,
        drop_fn: unsafe fn(*mut u8),
    },
    Deferred(Box<dyn FnOnce() + Send>),
}

// SAFETY: raw garbage is only ever freed by the thread that owns the bag (or
// by the collector once all handles are gone), never aliased concurrently; the
// deferred variant already requires `Send` of its closure.
unsafe impl Send for Garbage {}

impl Garbage {
    /// Free the underlying allocation / run the deferred action.
    ///
    /// # Safety
    /// Must be called at most once, after no thread can still reference the
    /// retired allocation.
    unsafe fn free(self) {
        match self {
            // SAFETY: `drop_fn` was registered with `ptr` at retire time and
            // the caller guarantees single, exclusive reclamation.
            Garbage::Raw { ptr, drop_fn } => unsafe { drop_fn(ptr) },
            Garbage::Deferred(f) => f(),
        }
    }
}

#[derive(Default)]
struct Bag {
    items: Vec<Garbage>,
}

impl Bag {
    fn free_all(&mut self) {
        for g in self.items.drain(..) {
            // SAFETY: the epoch protocol (or collector teardown) guarantees
            // exclusivity at this point.
            unsafe { g.free() };
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

/// Per-registered-thread shared state.
struct SlotState {
    /// Last global epoch this handle announced as observed.
    announced: AtomicU64,
    /// Whether the slot is currently owned by a live handle.
    in_use: AtomicBool,
}

/// The shared collector.
///
/// Cheap to clone behind an [`Arc`]; typically one per table instance.
pub struct Collector {
    epoch: CachePadded<AtomicU64>,
    slots: Box<[CachePadded<SlotState>]>,
    /// Garbage abandoned by dropped handles, tagged with its retirement epoch.
    orphans: Mutex<Vec<(u64, Garbage)>>,
    /// Total number of pointers freed so far (for tests and stats).
    freed: AtomicU64,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// Create a collector with the default handle capacity.
    pub fn new() -> Self {
        Self::with_capacity(MAX_HANDLES)
    }

    /// Create a collector able to register up to `capacity` handles.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (0..capacity)
            .map(|_| {
                CachePadded::new(SlotState {
                    announced: AtomicU64::new(0),
                    in_use: AtomicBool::new(false),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Collector {
            epoch: CachePadded::new(AtomicU64::new(GENERATIONS as u64)),
            slots,
            orphans: Mutex::new(Vec::new()),
            freed: AtomicU64::new(0),
        }
    }

    /// Current global epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Total number of retired pointers that have been freed.
    pub fn freed(&self) -> u64 {
        self.freed.load(Ordering::Relaxed)
    }

    /// Register a new participant. Returns `None` if all slots are taken.
    pub fn register(self: &Arc<Self>) -> Option<LocalHandle> {
        let current = self.epoch();
        for (idx, slot) in self.slots.iter().enumerate() {
            if slot
                .in_use
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                slot.announced.store(current, Ordering::Release);
                return Some(LocalHandle {
                    collector: Arc::clone(self),
                    slot: idx,
                    bags: std::array::from_fn(|_| Bag::default()),
                    pending: 0,
                });
            }
        }
        None
    }

    /// Try to advance the global epoch. Succeeds only when every registered
    /// handle has announced the current epoch. Returns the new epoch on
    /// success.
    pub fn try_advance(&self) -> Option<u64> {
        let current = self.epoch();
        for slot in self.slots.iter() {
            if slot.in_use.load(Ordering::Acquire)
                && slot.announced.load(Ordering::Acquire) < current
            {
                return None;
            }
        }
        match self
            .epoch
            .compare_exchange(current, current + 1, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                self.collect_orphans(current + 1);
                Some(current + 1)
            }
            Err(_) => None,
        }
    }

    /// Free orphaned garbage retired at least two epochs before `now`.
    fn collect_orphans(&self, now: u64) {
        let mut orphans = self.orphans.lock().unwrap();
        let mut kept = Vec::with_capacity(orphans.len());
        for (epoch, g) in orphans.drain(..) {
            if epoch + 2 <= now {
                // SAFETY: two full epochs have elapsed since retirement.
                unsafe { g.free() };
                self.freed.fetch_add(1, Ordering::Relaxed);
            } else {
                kept.push((epoch, g));
            }
        }
        *orphans = kept;
    }

    /// Verify the collector's structural invariants, returning a description
    /// of the first violation.
    ///
    /// Intended for quiescent points in tests: concurrent `quiescent` calls
    /// can advance the epoch mid-sweep and make the checks fail spuriously.
    pub fn check_invariants(&self) -> Result<(), String> {
        let epoch = self.epoch();
        if epoch < GENERATIONS as u64 {
            return Err(format!(
                "global epoch {epoch} below its initial value {GENERATIONS}"
            ));
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.in_use.load(Ordering::Acquire) {
                let announced = slot.announced.load(Ordering::Acquire);
                if announced > epoch {
                    return Err(format!(
                        "slot {i} announced epoch {announced} ahead of global {epoch}"
                    ));
                }
            }
        }
        let orphans = self.orphans.lock().unwrap();
        for (i, (retired_at, _)) in orphans.iter().enumerate() {
            if *retired_at > epoch {
                return Err(format!(
                    "orphan {i} retired at future epoch {retired_at} (global {epoch})"
                ));
            }
            // Anything two epochs old is freed by `collect_orphans` on every
            // advance, so at a quiescent point nothing freeable may linger.
            if retired_at + 2 <= epoch {
                return Err(format!(
                    "orphan {i} retired at {retired_at} was freeable at epoch {epoch} but not freed"
                ));
            }
        }
        Ok(())
    }

    /// Number of handles currently registered.
    pub fn registered(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.in_use.load(Ordering::Acquire))
            .count()
    }

    fn unregister(&self, slot: usize, mut bags: [Bag; GENERATIONS]) {
        // Move any not-yet-freeable garbage into the orphan list so it is
        // reclaimed by a later advance (or collector teardown).
        let epoch = self.epoch();
        let mut orphans = self.orphans.lock().unwrap();
        for bag in bags.iter_mut() {
            for g in bag.items.drain(..) {
                orphans.push((epoch, g));
            }
        }
        drop(orphans);
        self.slots[slot].in_use.store(false, Ordering::Release);
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        // No handles can be alive (they hold an Arc), so everything left in
        // the orphan list is unreachable and safe to free.
        let mut orphans = self.orphans.lock().unwrap();
        for (_, g) in orphans.drain(..) {
            // SAFETY: every handle holds an Arc<Collector>, so reaching Drop
            // means no handle (and no reader) can still reference the garbage.
            unsafe { g.free() };
            self.freed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A per-thread handle onto a [`Collector`].
///
/// Not `Sync`: each handle is owned by one thread at a time (it may be moved).
pub struct LocalHandle {
    collector: Arc<Collector>,
    slot: usize,
    bags: [Bag; GENERATIONS],
    pending: usize,
}

impl LocalHandle {
    /// The collector this handle belongs to.
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    /// Retire a boxed value; it is freed two epoch advances from now.
    pub fn retire_box<T: Send + 'static>(&mut self, value: Box<T>) {
        // SAFETY: only ever registered below with a pointer produced by
        // `Box::into_raw` on a `Box<T>`.
        unsafe fn drop_box<T>(ptr: *mut u8) {
            // SAFETY: constructed from Box::into_raw of a T below.
            drop(unsafe { Box::from_raw(ptr.cast::<T>()) });
        }
        let ptr = Box::into_raw(value).cast::<u8>();
        // SAFETY: ptr/drop_fn pair is consistent.
        unsafe { self.retire_raw(ptr, drop_box::<T>) };
    }

    /// Retire a raw allocation with a custom deleter.
    ///
    /// # Safety
    /// `ptr` must remain valid until the deleter runs, the deleter must be the
    /// unique owner-release for `ptr`, and no new references to `ptr` may be
    /// created after this call.
    // HOT: per-Delete retire path — must not panic. The modulo keeps the bag
    // index in range; on the unreachable `None` the garbage is leaked rather
    // than freed, which is memory-safe.
    pub unsafe fn retire_raw(&mut self, ptr: *mut u8, drop_fn: unsafe fn(*mut u8)) {
        let epoch = self.collector.epoch();
        if let Some(bag) = self.bags.get_mut((epoch as usize) % GENERATIONS) {
            bag.items.push(Garbage::Raw { ptr, drop_fn });
            self.pending += 1;
        }
    }

    /// Defer an arbitrary reclamation action until two epoch advances from
    /// now. The closure typically captures the allocator and allocation size
    /// needed to release an out-of-line record.
    // HOT: per-op reclamation staging — must not panic (see `retire_raw`).
    pub fn defer(&mut self, f: impl FnOnce() + Send + 'static) {
        let epoch = self.collector.epoch();
        if let Some(bag) = self.bags.get_mut((epoch as usize) % GENERATIONS) {
            bag.items.push(Garbage::Deferred(Box::new(f)));
            self.pending += 1;
        }
    }

    /// Announce a quiescent point: this thread holds no references obtained
    /// from the protected structure. Frees any of this handle's garbage that
    /// has become reclaimable and opportunistically tries to advance the
    /// global epoch.
    // HOT: announced at every quiescent point of the operation loop — must
    // not panic. `self.slot` was handed out by `register()` and the bag index
    // is modulo-bounded; a stray index skips the announcement (the thread
    // merely appears stalled, delaying reclamation) rather than panicking.
    pub fn quiescent(&mut self) {
        let collector = Arc::clone(&self.collector);
        let epoch = collector.epoch();
        if let Some(slot) = collector.slots.get(self.slot) {
            slot.announced.store(epoch, Ordering::Release);
        }
        // Garbage retired in epoch `epoch - 2` (same bag index as `epoch + 1`)
        // is now unreachable by every thread.
        let reclaim_idx = ((epoch + 1) as usize) % GENERATIONS;
        if let Some(bag) = self.bags.get_mut(reclaim_idx) {
            let n = bag.len();
            if n > 0 {
                bag.free_all();
                self.pending -= n;
                collector.freed.fetch_add(n as u64, Ordering::Relaxed);
            }
        }
        collector.try_advance();
    }

    /// Number of retired-but-not-yet-freed pointers owned by this handle.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Verify this handle's bookkeeping (the `pending` counter must equal the
    /// total garbage staged across its bags) plus the shared collector's
    /// invariants.
    pub fn check_invariants(&self) -> Result<(), String> {
        let staged: usize = self.bags.iter().map(|b| b.len()).sum();
        if staged != self.pending {
            return Err(format!(
                "handle slot {}: pending counter {} but {} staged in bags",
                self.slot, self.pending, staged
            ));
        }
        self.collector.check_invariants()
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        let bags = std::mem::replace(&mut self.bags, std::array::from_fn(|_| Bag::default()));
        self.collector.unregister(self.slot, bags);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn register_and_unregister() {
        let c = Arc::new(Collector::with_capacity(2));
        let h1 = c.register().unwrap();
        let h2 = c.register().unwrap();
        assert!(c.register().is_none(), "capacity respected");
        assert_eq!(c.registered(), 2);
        drop(h1);
        assert_eq!(c.registered(), 1);
        let _h3 = c.register().unwrap();
        drop(h2);
    }

    #[test]
    fn garbage_survives_until_two_advances() {
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Arc::new(Collector::new());
        let mut h = c.register().unwrap();

        h.retire_box(Box::new(DropCounter(Arc::clone(&drops))));
        assert_eq!(drops.load(Ordering::SeqCst), 0);

        // One quiescent point is not enough: a concurrent reader registered in
        // the same epoch could still hold the pointer.
        h.quiescent();
        assert_eq!(drops.load(Ordering::SeqCst), 0);

        // After two more epoch advances the bag the garbage lives in comes up
        // for reclamation.
        h.quiescent();
        h.quiescent();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        assert_eq!(c.freed(), 1);
        assert_eq!(h.pending(), 0);
    }

    #[test]
    fn epoch_does_not_advance_while_a_handle_lags() {
        let c = Arc::new(Collector::new());
        let mut fast = c.register().unwrap();
        let _lagging = c.register().unwrap();

        let before = c.epoch();
        for _ in 0..10 {
            fast.quiescent();
        }
        // The lagging handle announced `before` when it registered, so at most
        // one advance (to `before + 1`) is possible; after that the epoch must
        // stall until the lagging handle reaches a quiescent point.
        assert!(
            c.epoch() <= before + 1,
            "epoch ran ahead of a lagging handle"
        );
        let stalled = c.epoch();
        for _ in 0..10 {
            fast.quiescent();
        }
        assert_eq!(c.epoch(), stalled);
    }

    #[test]
    fn dropped_handle_garbage_is_freed_by_collector_teardown() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let c = Arc::new(Collector::new());
            let mut h = c.register().unwrap();
            for _ in 0..16 {
                h.retire_box(Box::new(DropCounter(Arc::clone(&drops))));
            }
            drop(h);
            assert_eq!(drops.load(Ordering::SeqCst), 0, "still staged as orphans");
            drop(c);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn orphans_are_freed_by_later_advances() {
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Arc::new(Collector::new());
        {
            let mut short_lived = c.register().unwrap();
            short_lived.retire_box(Box::new(DropCounter(Arc::clone(&drops))));
        }
        let mut survivor = c.register().unwrap();
        for _ in 0..4 {
            survivor.quiescent();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn multithreaded_retire_and_advance() {
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Arc::new(Collector::new());
        const THREADS: usize = 4;
        let per_thread = dlht_util::miri_scaled(500) as usize;

        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = Arc::clone(&c);
                let drops = Arc::clone(&drops);
                s.spawn(move || {
                    let mut h = c.register().unwrap();
                    for i in 0..per_thread {
                        h.retire_box(Box::new(DropCounter(Arc::clone(&drops))));
                        if i % 8 == 0 {
                            h.quiescent();
                        }
                    }
                });
            }
        });
        // All handles dropped; teardown of the collector frees the rest.
        drop(c);
        assert_eq!(drops.load(Ordering::SeqCst), THREADS * per_thread);
    }

    #[test]
    fn deferred_closures_run_after_two_advances() {
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Arc::new(Collector::new());
        let mut h = c.register().unwrap();
        {
            let drops = Arc::clone(&drops);
            h.defer(move || {
                drops.fetch_add(1, Ordering::SeqCst);
            });
        }
        h.quiescent();
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        h.quiescent();
        h.quiescent();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn freed_counter_tracks_reclamation() {
        let c = Arc::new(Collector::new());
        let mut h = c.register().unwrap();
        for _ in 0..10 {
            h.retire_box(Box::new([0u8; 32]));
        }
        for _ in 0..5 {
            h.quiescent();
        }
        assert_eq!(c.freed(), 10);
    }
}
