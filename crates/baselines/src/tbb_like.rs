//! TBB-concurrent_hash_map-like baseline: reader-writer-locked shards over a
//! general-purpose hash map (Figure 1's `TBB` bar). Fine-grained locking but
//! no inlining guarantees, no prefetching, and allocation per insert.

use dlht_core::{DlhtError, InsertOutcome, KvBackend, MapFeatures};
use dlht_hash::{Hasher64, WyHash};
use dlht_util::RwLock;
use std::collections::HashMap;

const DEFAULT_SHARDS: usize = 64;

/// Sharded `RwLock<HashMap>` map.
pub struct ShardedStdMap {
    shards: Vec<RwLock<HashMap<u64, u64>>>,
}

impl ShardedStdMap {
    /// Create a map with the default shard count, pre-sizing each shard.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_shards(capacity, DEFAULT_SHARDS)
    }

    /// Create a map with an explicit shard count.
    pub fn with_capacity_and_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ShardedStdMap {
            shards: (0..shards)
                .map(|_| RwLock::new(HashMap::with_capacity(capacity / shards + 1)))
                .collect(),
        }
    }

    #[inline]
    fn shard_of(&self, key: u64) -> &RwLock<HashMap<u64, u64>> {
        let h = WyHash.hash_u64(key);
        &self.shards[(h as usize) & (self.shards.len() - 1)]
    }
}

impl KvBackend for ShardedStdMap {
    fn get(&self, key: u64) -> Option<u64> {
        self.shard_of(key).read().get(&key).copied()
    }

    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        if dlht_core::bucket::is_reserved_key(key) {
            return Err(DlhtError::ReservedKey);
        }
        let mut shard = self.shard_of(key).write();
        if let Some(&existing) = shard.get(&key) {
            Ok(InsertOutcome::AlreadyExists(existing))
        } else {
            shard.insert(key, value);
            Ok(InsertOutcome::Inserted)
        }
    }

    fn put(&self, key: u64, value: u64) -> Option<u64> {
        let mut shard = self.shard_of(key).write();
        if let Some(v) = shard.get_mut(&key) {
            let prev = *v;
            *v = value;
            Some(prev)
        } else {
            None
        }
    }

    fn delete(&self, key: u64) -> Option<u64> {
        self.shard_of(key).write().remove(&key)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn name(&self) -> &'static str {
        "TBB-like"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures {
            collision_handling: "closed-addressing",
            lock_free_gets: false,
            non_blocking_puts: false,
            non_blocking_inserts: false,
            deletes_free_slots: true,
            resizable: true,
            non_blocking_resize: false,
            overlaps_memory_accesses: false,
            inline_values: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn basic_semantics() {
        conformance::basic_semantics(&ShardedStdMap::with_capacity(1024));
    }

    #[test]
    fn concurrent_inserts() {
        conformance::concurrent_inserts(&ShardedStdMap::with_capacity(50_000), 2_000);
    }

    #[test]
    fn shard_count_is_configurable() {
        let m = ShardedStdMap::with_capacity_and_shards(1_000, 7);
        assert_eq!(m.shards.len(), 8, "rounded to a power of two");
        for k in 0..1_000u64 {
            assert!(m.insert(k, k).unwrap().inserted());
        }
        assert_eq!(m.len(), 1_000);
    }
}
