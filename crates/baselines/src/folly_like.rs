//! Folly-AtomicHashMap-like baseline: lock-free open addressing, **no
//! resizing**, and tombstone "deletes" that can never reclaim index slots
//! (Table 1, §2.2).

use crate::open_addr::{is_unsupported_key, CellArray, InsertCell};
use dlht_core::{DlhtError, InsertOutcome, KvBackend, MapFeatures};

const MAX_PROBES: u64 = 256;

/// Folly-like fixed-capacity open-addressing map.
pub struct FollyLikeMap {
    cells: CellArray,
}

impl FollyLikeMap {
    /// Create a map with room for about `capacity` keys at ~60% load.
    pub fn with_capacity(capacity: usize) -> Self {
        FollyLikeMap {
            cells: CellArray::new(capacity * 5 / 3),
        }
    }

    /// Fraction of cells consumed by live entries and tombstones.
    pub fn fill_ratio(&self) -> f64 {
        self.cells.fill_ratio()
    }
}

impl KvBackend for FollyLikeMap {
    fn get(&self, key: u64) -> Option<u64> {
        if is_unsupported_key(key) {
            return None;
        }
        self.cells.get(key, MAX_PROBES, false)
    }

    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        if is_unsupported_key(key) {
            return Err(DlhtError::ReservedKey);
        }
        match self.cells.insert(key, value, MAX_PROBES, false) {
            InsertCell::Inserted => Ok(InsertOutcome::Inserted),
            InsertCell::Exists(v) => Ok(InsertOutcome::AlreadyExists(v)),
            InsertCell::Full => Err(DlhtError::TableFull),
        }
    }

    fn put(&self, key: u64, value: u64) -> Option<u64> {
        if is_unsupported_key(key) {
            return None;
        }
        self.cells.update(key, value, MAX_PROBES, false)
    }

    fn delete(&self, key: u64) -> Option<u64> {
        if is_unsupported_key(key) {
            return None;
        }
        self.cells.remove(key, MAX_PROBES, false)
    }

    fn len(&self) -> usize {
        self.cells.live()
    }

    fn name(&self) -> &'static str {
        "Folly-like"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures {
            collision_handling: "open-addressing",
            lock_free_gets: true,
            non_blocking_puts: true,
            non_blocking_inserts: true,
            deletes_free_slots: false,
            resizable: false,
            non_blocking_resize: false,
            overlaps_memory_accesses: false,
            inline_values: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn basic_semantics() {
        conformance::basic_semantics(&FollyLikeMap::with_capacity(1024));
    }

    #[test]
    fn concurrent_inserts() {
        conformance::concurrent_inserts(&FollyLikeMap::with_capacity(50_000), 2_000);
    }

    #[test]
    fn deletes_never_reclaim_slots() {
        let m = FollyLikeMap::with_capacity(64);
        let before = m.fill_ratio();
        for k in 0..50u64 {
            assert!(m.insert(k, k).unwrap().inserted());
            assert_eq!(m.delete(k), Some(k));
        }
        assert_eq!(m.len(), 0);
        assert!(m.fill_ratio() > before, "tombstones must accumulate");
        // Eventually inserts start failing even though nothing is alive.
        let mut failed = false;
        for k in 1_000..10_000u64 {
            if m.insert(k, k).is_err() {
                m.delete(k);
            }
            if m.insert(k + 100_000, k).is_err() {
                failed = true;
                break;
            }
            m.delete(k + 100_000);
        }
        assert!(
            failed,
            "a non-resizable tombstone table must eventually fill"
        );
    }
}
