//! From-scratch re-implementations of the concurrent hashtables the DLHT
//! paper compares against (Table 3), plus adapters exposing DLHT itself
//! through the same [`ConcurrentMap`] interface so the workload runner can
//! drive all of them interchangeably.
//!
//! | Type | Stands in for | Key properties reproduced |
//! |---|---|---|
//! | [`ClhtMap`] | CLHT (lock-free variant) | closed addressing, no chaining, no Puts, serial blocking resize |
//! | [`GrowtLikeMap`] | uaGrowT | open addressing, tombstone deletes, blocking full-table migrations |
//! | [`FollyLikeMap`] | Folly AtomicHashMap | open addressing, non-resizable, deletes never reclaim slots |
//! | [`DramhitLikeMap`] | DRAMHiT | inlined + prefetched batches, upsert-only, may reorder batch requests |
//! | [`MicaLikeMap`] | MICA (CRCW) | closed addressing, lock-based writes, values not inlined (pointer chase) |
//! | [`CuckooMap`] | libcuckoo | bucketized cuckoo hashing with striped locks |
//! | [`LeapfrogLikeMap`] | Junction Leapfrog | quadratic probing, non-resizable, tombstones |
//! | [`ShardedStdMap`] | Intel TBB concurrent_hash_map | RwLock-sharded general-purpose map |
//! | [`DlhtAdapter`] / [`DlhtNoBatchAdapter`] | DLHT / DLHT-NoBatch | the paper's system, with and without batching |
//!
//! These are *algorithmic* stand-ins, not line-by-line ports: each reproduces
//! the collision handling, delete semantics, resize behaviour, inlining, and
//! prefetching properties that Table 1 attributes to the original, which is
//! what drives the performance comparison in §5.

mod api;
mod clht;
mod cuckoo;
mod dlht_adapter;
mod dramhit_like;
mod folly_like;
mod growt_like;
mod leapfrog_like;
mod mica_like;
mod open_addr;
mod tbb_like;

pub use api::{BatchOp, BatchResult, ConcurrentMap, MapFeatures};
pub use clht::ClhtMap;
pub use cuckoo::CuckooMap;
pub use dlht_adapter::{DlhtAdapter, DlhtNoBatchAdapter};
pub use dramhit_like::DramhitLikeMap;
pub use folly_like::FollyLikeMap;
pub use growt_like::GrowtLikeMap;
pub use leapfrog_like::LeapfrogLikeMap;
pub use mica_like::MicaLikeMap;
pub use open_addr::CellArray;
pub use tbb_like::ShardedStdMap;

/// Identifier for every hashtable in the evaluation (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapKind {
    /// DLHT with batching (software prefetching).
    Dlht,
    /// DLHT issuing requests one at a time.
    DlhtNoBatch,
    /// CLHT-like closed-addressing baseline.
    Clht,
    /// GrowT-like open-addressing resizable baseline.
    Growt,
    /// Folly-like open-addressing non-resizable baseline.
    Folly,
    /// DRAMHiT-like batched open-addressing baseline.
    Dramhit,
    /// MICA-like lock-based non-inlined baseline.
    Mica,
    /// libcuckoo-like baseline.
    Cuckoo,
    /// Junction-Leapfrog-like baseline.
    Leapfrog,
    /// TBB-like sharded-lock baseline.
    Tbb,
}

impl MapKind {
    /// All evaluated hashtables (the full Figure 1 set).
    pub fn all() -> Vec<MapKind> {
        vec![
            MapKind::Dlht,
            MapKind::DlhtNoBatch,
            MapKind::Clht,
            MapKind::Growt,
            MapKind::Folly,
            MapKind::Dramhit,
            MapKind::Mica,
            MapKind::Cuckoo,
            MapKind::Leapfrog,
            MapKind::Tbb,
        ]
    }

    /// The fast subset the paper focuses on after Figure 3.
    pub fn fastest() -> Vec<MapKind> {
        vec![
            MapKind::Dlht,
            MapKind::DlhtNoBatch,
            MapKind::Clht,
            MapKind::Growt,
            MapKind::Folly,
            MapKind::Dramhit,
            MapKind::Mica,
        ]
    }

    /// Hashtables that support growing their index (Figure 7).
    pub fn resizable() -> Vec<MapKind> {
        vec![MapKind::Dlht, MapKind::Clht, MapKind::Growt]
    }

    /// Display name (matches Table 3).
    pub fn name(self) -> &'static str {
        match self {
            MapKind::Dlht => "DLHT",
            MapKind::DlhtNoBatch => "DLHT-NoBatch",
            MapKind::Clht => "CLHT",
            MapKind::Growt => "GrowT-like",
            MapKind::Folly => "Folly-like",
            MapKind::Dramhit => "DRAMHiT-like",
            MapKind::Mica => "MICA-like",
            MapKind::Cuckoo => "Cuckoo",
            MapKind::Leapfrog => "Leapfrog-like",
            MapKind::Tbb => "TBB-like",
        }
    }

    /// Instantiate the hashtable sized for `capacity` keys.
    pub fn build(self, capacity: usize) -> Box<dyn ConcurrentMap> {
        match self {
            MapKind::Dlht => Box::new(DlhtAdapter::with_capacity(capacity)),
            MapKind::DlhtNoBatch => Box::new(DlhtNoBatchAdapter::with_capacity(capacity)),
            MapKind::Clht => Box::new(ClhtMap::with_capacity(capacity)),
            MapKind::Growt => Box::new(GrowtLikeMap::with_capacity(capacity)),
            MapKind::Folly => Box::new(FollyLikeMap::with_capacity(capacity)),
            MapKind::Dramhit => Box::new(DramhitLikeMap::with_capacity(capacity)),
            MapKind::Mica => Box::new(MicaLikeMap::with_capacity(capacity)),
            MapKind::Cuckoo => Box::new(CuckooMap::with_capacity(capacity)),
            MapKind::Leapfrog => Box::new(LeapfrogLikeMap::with_capacity(capacity)),
            MapKind::Tbb => Box::new(ShardedStdMap::with_capacity(capacity)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_works() {
        for kind in MapKind::all() {
            let map = kind.build(4_096);
            assert_eq!(map.name(), kind.name());
            assert!(map.insert(1, 10), "{}", kind.name());
            assert_eq!(map.get(1), Some(10), "{}", kind.name());
            assert_eq!(map.len(), 1, "{}", kind.name());
        }
    }

    #[test]
    fn kind_subsets_are_consistent() {
        let all = MapKind::all();
        for k in MapKind::fastest() {
            assert!(all.contains(&k));
        }
        for k in MapKind::resizable() {
            assert!(all.contains(&k));
            let features = k.build(64).features();
            assert!(features.resizable, "{} must be resizable", k.name());
        }
    }

    #[test]
    fn only_dlht_has_a_non_blocking_resize() {
        for kind in MapKind::all() {
            let f = kind.build(64).features();
            let is_dlht = matches!(kind, MapKind::Dlht | MapKind::DlhtNoBatch);
            assert_eq!(f.non_blocking_resize, is_dlht, "{}", kind.name());
        }
    }
}
