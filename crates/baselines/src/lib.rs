//! From-scratch re-implementations of the concurrent hashtables the DLHT
//! paper compares against (Table 3), all exposed through the **single**
//! [`KvBackend`] operations trait from `dlht-core` — the same trait DLHT's
//! own modes implement — so the workload runner and every benchmark drive
//! them interchangeably with one `Request`/`Response` vocabulary.
//!
//! | Type | Stands in for | Key properties reproduced |
//! |---|---|---|
//! | [`ClhtMap`] | CLHT (lock-free variant) | closed addressing, no chaining, no Puts, serial blocking resize |
//! | [`GrowtLikeMap`] | uaGrowT | open addressing, tombstone deletes, blocking full-table migrations |
//! | [`FollyLikeMap`] | Folly AtomicHashMap | open addressing, non-resizable, deletes never reclaim slots |
//! | [`DramhitLikeMap`] | DRAMHiT | inlined + prefetched batches, upsert-only, may reorder batch requests |
//! | [`MicaLikeMap`] | MICA (CRCW) | closed addressing, lock-based writes, values not inlined (pointer chase) |
//! | [`CuckooMap`] | libcuckoo | bucketized cuckoo hashing with striped locks |
//! | [`LeapfrogLikeMap`] | Junction Leapfrog | quadratic probing, non-resizable, tombstones |
//! | [`ShardedStdMap`] | Intel TBB concurrent_hash_map | RwLock-sharded general-purpose map |
//! | [`DlhtAdapter`] / [`DlhtNoBatchAdapter`] | DLHT / DLHT-NoBatch | the paper's system, with and without batching |
//!
//! These are *algorithmic* stand-ins, not line-by-line ports: each reproduces
//! the collision handling, delete semantics, resize behaviour, inlining, and
//! prefetching properties that Table 1 attributes to the original, which is
//! what drives the performance comparison in §5.

#![forbid(unsafe_code)]

mod clht;
mod cuckoo;
mod dlht_adapter;
mod dramhit_like;
mod folly_like;
mod growt_like;
mod leapfrog_like;
mod mica_like;
mod open_addr;
mod tbb_like;

pub use clht::ClhtMap;
pub use cuckoo::CuckooMap;
pub use dlht_adapter::{DlhtAdapter, DlhtNoBatchAdapter, ShardedDlhtAdapter};
pub use dramhit_like::DramhitLikeMap;
pub use folly_like::FollyLikeMap;
pub use growt_like::GrowtLikeMap;
pub use leapfrog_like::LeapfrogLikeMap;
pub use mica_like::MicaLikeMap;
pub use open_addr::CellArray;
pub use tbb_like::ShardedStdMap;

// The one operations API everything here implements (re-exported so
// downstream crates need only this dependency to drive any table).
pub use dlht_core::{
    Batch, BatchExecutor, BatchPolicy, DlhtError, InsertOutcome, KvBackend, MapFeatures, Pipeline,
    Request, Response,
};

/// Identifier for every hashtable in the evaluation (Table 3), plus the
/// shard-partitioned DLHT front added on top of the paper's set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapKind {
    /// DLHT with batching (software prefetching).
    Dlht,
    /// DLHT issuing requests one at a time.
    DlhtNoBatch,
    /// DLHT partitioned over this many independent shards (rounded up to a
    /// power of two), each resizing on its own — `dlht_core::ShardedTable`.
    DlhtSharded(u8),
    /// CLHT-like closed-addressing baseline.
    Clht,
    /// GrowT-like open-addressing resizable baseline.
    Growt,
    /// Folly-like open-addressing non-resizable baseline.
    Folly,
    /// DRAMHiT-like batched open-addressing baseline.
    Dramhit,
    /// MICA-like lock-based non-inlined baseline.
    Mica,
    /// libcuckoo-like baseline.
    Cuckoo,
    /// Junction-Leapfrog-like baseline.
    Leapfrog,
    /// TBB-like sharded-lock baseline.
    Tbb,
}

impl MapKind {
    /// All evaluated hashtables (the full Figure 1 set, plus the sharded
    /// DLHT front at its default fan-out).
    pub fn all() -> Vec<MapKind> {
        vec![
            MapKind::Dlht,
            MapKind::DlhtNoBatch,
            MapKind::DlhtSharded(4),
            MapKind::Clht,
            MapKind::Growt,
            MapKind::Folly,
            MapKind::Dramhit,
            MapKind::Mica,
            MapKind::Cuckoo,
            MapKind::Leapfrog,
            MapKind::Tbb,
        ]
    }

    /// The fast subset the paper focuses on after Figure 3.
    pub fn fastest() -> Vec<MapKind> {
        vec![
            MapKind::Dlht,
            MapKind::DlhtNoBatch,
            MapKind::Clht,
            MapKind::Growt,
            MapKind::Folly,
            MapKind::Dramhit,
            MapKind::Mica,
        ]
    }

    /// Hashtables that support growing their index (Figure 7).
    pub fn resizable() -> Vec<MapKind> {
        vec![
            MapKind::Dlht,
            MapKind::DlhtSharded(4),
            MapKind::Clht,
            MapKind::Growt,
        ]
    }

    /// Display name (matches Table 3; the sharded front names its fan-out
    /// for the common power-of-two counts).
    pub fn name(self) -> &'static str {
        match self {
            MapKind::Dlht => "DLHT",
            MapKind::DlhtNoBatch => "DLHT-NoBatch",
            MapKind::DlhtSharded(n) => dlht_adapter::sharded_display_name(n as usize),
            MapKind::Clht => "CLHT",
            MapKind::Growt => "GrowT-like",
            MapKind::Folly => "Folly-like",
            MapKind::Dramhit => "DRAMHiT-like",
            MapKind::Mica => "MICA-like",
            MapKind::Cuckoo => "Cuckoo",
            MapKind::Leapfrog => "Leapfrog-like",
            MapKind::Tbb => "TBB-like",
        }
    }

    /// Instantiate the hashtable sized for `capacity` keys, behind the
    /// unified operations trait.
    pub fn build(self, capacity: usize) -> Box<dyn KvBackend> {
        match self {
            MapKind::Dlht => Box::new(DlhtAdapter::with_capacity(capacity)),
            MapKind::DlhtNoBatch => Box::new(DlhtNoBatchAdapter::with_capacity(capacity)),
            MapKind::DlhtSharded(shards) => Box::new(ShardedDlhtAdapter::with_capacity(
                (shards as usize).max(1),
                capacity,
            )),
            MapKind::Clht => Box::new(ClhtMap::with_capacity(capacity)),
            MapKind::Growt => Box::new(GrowtLikeMap::with_capacity(capacity)),
            MapKind::Folly => Box::new(FollyLikeMap::with_capacity(capacity)),
            MapKind::Dramhit => Box::new(DramhitLikeMap::with_capacity(capacity)),
            MapKind::Mica => Box::new(MicaLikeMap::with_capacity(capacity)),
            MapKind::Cuckoo => Box::new(CuckooMap::with_capacity(capacity)),
            MapKind::Leapfrog => Box::new(LeapfrogLikeMap::with_capacity(capacity)),
            MapKind::Tbb => Box::new(ShardedStdMap::with_capacity(capacity)),
        }
    }
}

/// Shared conformance checks run against every implementation.
#[cfg(test)]
pub(crate) mod conformance {
    use super::*;

    /// Basic single-threaded semantics every backend must satisfy.
    pub fn basic_semantics<M: KvBackend>(map: &M) {
        let name = map.name();
        assert_eq!(map.get(1), None, "{name}");
        assert!(map.insert(1, 10).unwrap().inserted(), "{name}");
        assert!(
            !map.insert(1, 11).unwrap().inserted(),
            "{name}: duplicate insert must fail"
        );
        assert_eq!(map.get(1), Some(10), "{name}");
        assert!(map.contains(1), "{name}");
        // Backends that support pure updates must report the previous value
        // and reflect the new one; the rest must leave the old value intact.
        match map.put(1, 12) {
            Some(prev) => {
                assert_eq!(prev, 10, "{name}");
                assert_eq!(map.get(1), Some(12), "{name}");
            }
            None => assert_eq!(map.get(1), Some(10), "{name}"),
        }
        // Removal (tombstone or reclaiming) must hide the key from Gets and
        // report the removed value.
        let current = map.get(1).unwrap();
        if let Some(removed) = map.delete(1) {
            assert_eq!(removed, current, "{name}");
            assert_eq!(map.get(1), None, "{name}");
            assert_eq!(map.delete(1), None, "{name}: double delete must fail");
        }
        // Misses stay misses.
        assert_eq!(map.get(999), None, "{name}");
    }

    /// Concurrent smoke test: unique-winner inserts plus read stability.
    pub fn concurrent_inserts<M: KvBackend>(map: &M, keys: u64) {
        use std::sync::atomic::{AtomicU64, Ordering};
        let wins = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for k in 0..keys {
                        if matches!(map.insert(k, k * 2), Ok(o) if o.inserted()) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), keys, "{}", map.name());
        for k in 0..keys {
            assert_eq!(map.get(k), Some(k * 2), "{} key {k}", map.name());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_works() {
        for kind in MapKind::all() {
            let map = kind.build(4_096);
            assert_eq!(map.name(), kind.name());
            assert!(map.insert(1, 10).unwrap().inserted(), "{}", kind.name());
            assert_eq!(map.get(1), Some(10), "{}", kind.name());
            assert_eq!(map.len(), 1, "{}", kind.name());
        }
    }

    #[test]
    fn sharded_kind_and_adapter_agree_on_names_after_rounding() {
        // The shard count rounds up to a power of two inside the table; the
        // MapKind label and the built adapter's name() must agree anyway.
        for n in [1u8, 2, 3, 4, 5, 8, 16, 32] {
            let kind = MapKind::DlhtSharded(n);
            assert_eq!(kind.build(64).name(), kind.name(), "shards={n}");
        }
    }

    #[test]
    fn kind_subsets_are_consistent() {
        let all = MapKind::all();
        for k in MapKind::fastest() {
            assert!(all.contains(&k));
        }
        for k in MapKind::resizable() {
            assert!(all.contains(&k));
            let features = k.build(64).features();
            assert!(features.resizable, "{} must be resizable", k.name());
        }
    }

    #[test]
    fn only_dlht_has_a_non_blocking_resize() {
        for kind in MapKind::all() {
            let f = kind.build(64).features();
            let is_dlht = matches!(
                kind,
                MapKind::Dlht | MapKind::DlhtNoBatch | MapKind::DlhtSharded(_)
            );
            assert_eq!(f.non_blocking_resize, is_dlht, "{}", kind.name());
        }
    }

    #[test]
    fn every_kind_executes_the_unified_batch_api() {
        for kind in MapKind::all() {
            let map = kind.build(4_096);
            let reqs = [
                Request::Insert(1, 10),
                Request::Get(1),
                Request::Delete(1),
                Request::Get(1),
            ];
            let out = map.execute_batch(&reqs, BatchPolicy::RunAll);
            assert_eq!(out.len(), 4, "{}", kind.name());
            assert_eq!(out[1], Response::Value(Some(10)), "{}", kind.name());
            assert_eq!(out[3], Response::Value(None), "{}", kind.name());
        }
    }

    #[test]
    fn every_kind_reuses_a_batch_buffer() {
        for kind in MapKind::all() {
            let map = kind.build(4_096);
            let mut batch = Batch::with_capacity(2);
            for round in 0..4u64 {
                batch.clear();
                batch.push_insert(round, round * 2);
                batch.push_get(round);
                map.execute(&mut batch, BatchPolicy::RunAll);
                assert_eq!(
                    batch.responses()[1],
                    Response::Value(Some(round * 2)),
                    "{}",
                    kind.name()
                );
            }
            assert_eq!(map.len(), 4, "{}", kind.name());
        }
    }

    #[test]
    fn every_kind_drives_a_pipeline_in_submission_order() {
        // The generic prefetch pipeline works over any backend — designs
        // without prefetch support just skip the submit-time hint.
        for kind in MapKind::all() {
            let map = kind.build(4_096);
            for k in 0..200u64 {
                let _ = map.insert(k, k + 1).unwrap();
            }
            let mut pipe = Pipeline::new(map.as_ref(), 8);
            let mut got = Vec::new();
            for k in 0..200u64 {
                if let Some(r) = pipe.submit(Request::Get(k)) {
                    got.push(r);
                }
            }
            pipe.drain_into(&mut got);
            assert_eq!(got.len(), 200, "{}", kind.name());
            for (k, r) in got.iter().enumerate() {
                assert_eq!(
                    *r,
                    Response::Value(Some(k as u64 + 1)),
                    "{} key {k}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn default_upsert_works_for_every_kind() {
        for kind in MapKind::all() {
            let map = kind.build(4_096);
            assert_eq!(map.upsert(7, 70).unwrap(), None, "{}", kind.name());
            // Kinds with pure-Put support overwrite; the others (CLHT has no
            // Put) terminate reporting the existing value unchanged.
            match map.upsert(7, 71).unwrap() {
                Some(prev) => {
                    assert_eq!(prev, 70, "{}", kind.name());
                    let now = map.get(7).unwrap();
                    assert!(now == 71 || now == 70, "{}", kind.name());
                }
                None => assert_eq!(map.get(7), Some(70), "{}", kind.name()),
            }
        }
    }
}
