//! libcuckoo-like baseline: two-choice bucketized cuckoo hashing with striped
//! spin locks (Figure 1's `Cuckoo` bar). Requires more than one memory access
//! per request (two candidate buckets) and does not prefetch, which is why it
//! stays in the sub-250 M req/s group in the paper.

use dlht_core::{DlhtError, InsertOutcome, KvBackend, MapFeatures};
use dlht_hash::{Hasher64, Murmur64, WyHash};
use dlht_util::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

const BUCKET_SLOTS: usize = 4;
const LOCK_STRIPES: usize = 256;
const MAX_DISPLACEMENTS: usize = 256;

#[derive(Clone, Copy)]
struct Entry {
    key: u64,
    value: u64,
    used: bool,
}

impl Entry {
    const EMPTY: Entry = Entry {
        key: 0,
        value: 0,
        used: false,
    };
}

struct Bucket {
    slots: [Entry; BUCKET_SLOTS],
}

/// Cuckoo hash map with two hash functions and 4-slot buckets.
pub struct CuckooMap {
    buckets: Vec<Mutex<Bucket>>,
    live: AtomicUsize,
    mask: usize,
    _stripes: usize,
}

impl CuckooMap {
    /// Create a map with room for about `capacity` keys at ~50% load.
    pub fn with_capacity(capacity: usize) -> Self {
        let buckets = (capacity * 2 / BUCKET_SLOTS).max(16).next_power_of_two();
        CuckooMap {
            buckets: (0..buckets)
                .map(|_| {
                    Mutex::new(Bucket {
                        slots: [Entry::EMPTY; BUCKET_SLOTS],
                    })
                })
                .collect(),
            live: AtomicUsize::new(0),
            mask: buckets - 1,
            _stripes: LOCK_STRIPES,
        }
    }

    #[inline]
    fn bucket_indexes(&self, key: u64) -> (usize, usize) {
        let b1 = (WyHash.hash_u64(key) as usize) & self.mask;
        let mut b2 = (Murmur64.hash_u64(key) as usize) & self.mask;
        if b2 == b1 {
            b2 = (b2 + 1) & self.mask;
        }
        (b1, b2)
    }

    /// Lock two buckets in index order to avoid deadlocks.
    fn lock_pair(
        &self,
        a: usize,
        b: usize,
    ) -> (
        dlht_util::MutexGuard<'_, Bucket>,
        Option<dlht_util::MutexGuard<'_, Bucket>>,
    ) {
        if a == b {
            (self.buckets[a].lock(), None)
        } else if a < b {
            let ga = self.buckets[a].lock();
            let gb = self.buckets[b].lock();
            (ga, Some(gb))
        } else {
            let gb = self.buckets[b].lock();
            let ga = self.buckets[a].lock();
            (ga, Some(gb))
        }
    }

    fn find_in(bucket: &Bucket, key: u64) -> Option<usize> {
        bucket.slots.iter().position(|e| e.used && e.key == key)
    }

    fn insert_in(bucket: &mut Bucket, key: u64, value: u64) -> bool {
        for e in bucket.slots.iter_mut() {
            if !e.used {
                *e = Entry {
                    key,
                    value,
                    used: true,
                };
                return true;
            }
        }
        false
    }

    /// Greedy single-path displacement: evict a victim from `from` and try to
    /// re-home it, repeating up to `MAX_DISPLACEMENTS` times.
    fn displace_and_insert(&self, key: u64, value: u64) -> bool {
        let mut carry_key = key;
        let mut carry_value = value;
        let (mut target, _) = self.bucket_indexes(carry_key);
        for step in 0..MAX_DISPLACEMENTS {
            let mut guard = self.buckets[target].lock();
            if Self::insert_in(&mut guard, carry_key, carry_value) {
                return true;
            }
            // Evict the slot chosen by the step counter and carry it onward.
            let victim_slot = step % BUCKET_SLOTS;
            let victim = guard.slots[victim_slot];
            guard.slots[victim_slot] = Entry {
                key: carry_key,
                value: carry_value,
                used: true,
            };
            drop(guard);
            carry_key = victim.key;
            carry_value = victim.value;
            let (b1, b2) = self.bucket_indexes(carry_key);
            // Send the victim to its alternate bucket.
            target = if b1 == target { b2 } else { b1 };
        }
        // Path too long: put the carried element back if possible; report full.
        let (b1, b2) = self.bucket_indexes(carry_key);
        let (mut g1, g2) = self.lock_pair(b1, b2);
        if !Self::insert_in(&mut g1, carry_key, carry_value) {
            if let Some(mut g2) = g2 {
                let _ = Self::insert_in(&mut g2, carry_key, carry_value);
            }
        }
        false
    }
}

impl KvBackend for CuckooMap {
    fn get(&self, key: u64) -> Option<u64> {
        let (b1, b2) = self.bucket_indexes(key);
        {
            let g = self.buckets[b1].lock();
            if let Some(s) = Self::find_in(&g, key) {
                return Some(g.slots[s].value);
            }
        }
        let g = self.buckets[b2].lock();
        Self::find_in(&g, key).map(|s| g.slots[s].value)
    }

    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        if dlht_core::bucket::is_reserved_key(key) {
            return Err(DlhtError::ReservedKey);
        }
        let (b1, b2) = self.bucket_indexes(key);
        {
            let (mut g1, g2) = self.lock_pair(b1, b2);
            if let Some(s) = Self::find_in(&g1, key) {
                return Ok(InsertOutcome::AlreadyExists(g1.slots[s].value));
            }
            if let Some(g) = g2.as_ref() {
                if let Some(s) = Self::find_in(g, key) {
                    return Ok(InsertOutcome::AlreadyExists(g.slots[s].value));
                }
            }
            if Self::insert_in(&mut g1, key, value) {
                self.live.fetch_add(1, Ordering::Relaxed);
                return Ok(InsertOutcome::Inserted);
            }
            if let Some(mut g2) = g2 {
                if Self::insert_in(&mut g2, key, value) {
                    self.live.fetch_add(1, Ordering::Relaxed);
                    return Ok(InsertOutcome::Inserted);
                }
            }
        }
        // Both buckets full: displace.
        if self.displace_and_insert(key, value) {
            self.live.fetch_add(1, Ordering::Relaxed);
            Ok(InsertOutcome::Inserted)
        } else {
            Err(DlhtError::TableFull)
        }
    }

    fn put(&self, key: u64, value: u64) -> Option<u64> {
        let (b1, b2) = self.bucket_indexes(key);
        let (mut g1, g2) = self.lock_pair(b1, b2);
        if let Some(s) = Self::find_in(&g1, key) {
            let prev = g1.slots[s].value;
            g1.slots[s].value = value;
            return Some(prev);
        }
        if let Some(mut g2) = g2 {
            if let Some(s) = Self::find_in(&g2, key) {
                let prev = g2.slots[s].value;
                g2.slots[s].value = value;
                return Some(prev);
            }
        }
        None
    }

    fn delete(&self, key: u64) -> Option<u64> {
        let (b1, b2) = self.bucket_indexes(key);
        let (mut g1, g2) = self.lock_pair(b1, b2);
        if let Some(s) = Self::find_in(&g1, key) {
            g1.slots[s].used = false;
            self.live.fetch_sub(1, Ordering::Relaxed);
            return Some(g1.slots[s].value);
        }
        if let Some(mut g2) = g2 {
            if let Some(s) = Self::find_in(&g2, key) {
                g2.slots[s].used = false;
                self.live.fetch_sub(1, Ordering::Relaxed);
                return Some(g2.slots[s].value);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    fn name(&self) -> &'static str {
        "Cuckoo"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures {
            collision_handling: "open-addressing",
            lock_free_gets: false,
            non_blocking_puts: false,
            non_blocking_inserts: false,
            deletes_free_slots: true,
            resizable: false,
            non_blocking_resize: false,
            overlaps_memory_accesses: false,
            inline_values: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn basic_semantics() {
        conformance::basic_semantics(&CuckooMap::with_capacity(1024));
    }

    #[test]
    fn concurrent_inserts() {
        conformance::concurrent_inserts(&CuckooMap::with_capacity(50_000), 2_000);
    }

    #[test]
    fn displacement_keeps_all_keys_reachable() {
        let m = CuckooMap::with_capacity(2_000);
        for k in 0..1_500u64 {
            assert!(m.insert(k, k * 3).unwrap().inserted(), "insert {k}");
        }
        for k in 0..1_500u64 {
            assert_eq!(m.get(k), Some(k * 3), "key {k}");
        }
        assert_eq!(m.len(), 1_500);
    }

    #[test]
    fn deletes_make_room_for_new_keys() {
        let m = CuckooMap::with_capacity(256);
        for k in 0..200u64 {
            assert!(m.insert(k, k).unwrap().inserted());
        }
        for k in 0..200u64 {
            assert_eq!(m.delete(k), Some(k));
        }
        for k in 1_000..1_200u64 {
            assert!(
                m.insert(k, k).unwrap().inserted(),
                "slot reuse after delete must work"
            );
        }
    }
}
