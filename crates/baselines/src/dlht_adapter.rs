//! Adapters exposing DLHT itself through the common [`ConcurrentMap`]
//! interface, in two flavours matching Table 3: `DLHT` (with batching /
//! software prefetching) and `DLHT-NoBatch`.

use crate::api::{BatchOp, BatchResult, ConcurrentMap, MapFeatures};
use dlht_core::{DlhtConfig, DlhtMap, Request, Response};
use std::sync::Arc;

fn dlht_features() -> MapFeatures {
    MapFeatures {
        collision_handling: "closed-addressing",
        lock_free_gets: true,
        non_blocking_puts: true,
        non_blocking_inserts: true,
        deletes_free_slots: true,
        resizable: true,
        non_blocking_resize: true,
        overlaps_memory_accesses: true,
        inline_values: true,
    }
}

fn convert_batch(map: &DlhtMap, ops: &[BatchOp], out: &mut Vec<BatchResult>) {
    let reqs: Vec<Request> = ops
        .iter()
        .map(|op| match *op {
            BatchOp::Get(k) => Request::Get(k),
            BatchOp::Put(k, v) => Request::Put(k, v),
            BatchOp::Insert(k, v) => Request::Insert(k, v),
            BatchOp::Delete(k) => Request::Delete(k),
        })
        .collect();
    out.clear();
    for resp in map.execute_batch(&reqs, false) {
        out.push(match resp {
            Response::Value(v) => BatchResult::Value(v),
            Response::Updated(v) => BatchResult::Applied(v.is_some()),
            Response::Inserted(r) => BatchResult::Applied(matches!(r, Ok(o) if o.inserted())),
            Response::Deleted(v) => BatchResult::Applied(v.is_some()),
            Response::Skipped => BatchResult::Applied(false),
        });
    }
}

/// DLHT with its batching (software prefetching) API.
pub struct DlhtAdapter {
    map: Arc<DlhtMap>,
}

impl DlhtAdapter {
    /// Wrap a DLHT instance sized for `capacity` keys.
    pub fn with_capacity(capacity: usize) -> Self {
        DlhtAdapter {
            map: Arc::new(DlhtMap::with_capacity(capacity)),
        }
    }

    /// Wrap an explicit configuration.
    pub fn with_config(config: DlhtConfig) -> Self {
        DlhtAdapter {
            map: Arc::new(DlhtMap::with_config(config)),
        }
    }

    /// Access the wrapped map.
    pub fn inner(&self) -> &DlhtMap {
        &self.map
    }
}

impl ConcurrentMap for DlhtAdapter {
    fn get(&self, key: u64) -> Option<u64> {
        self.map.get(key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        matches!(self.map.insert(key, value), Ok(o) if o.inserted())
    }

    fn update(&self, key: u64, value: u64) -> bool {
        self.map.put(key, value).is_some()
    }

    fn remove(&self, key: u64) -> bool {
        self.map.delete(key).is_some()
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn name(&self) -> &'static str {
        "DLHT"
    }

    fn features(&self) -> MapFeatures {
        dlht_features()
    }

    fn supports_batching(&self) -> bool {
        true
    }

    fn execute_batch(&self, ops: &[BatchOp], out: &mut Vec<BatchResult>) {
        convert_batch(&self.map, ops, out);
    }
}

/// DLHT without the batching API (`DLHT-NoBatch` in Table 3): identical
/// algorithms, but requests are issued one at a time so memory latencies are
/// not overlapped.
pub struct DlhtNoBatchAdapter {
    map: Arc<DlhtMap>,
}

impl DlhtNoBatchAdapter {
    /// Wrap a DLHT instance sized for `capacity` keys.
    pub fn with_capacity(capacity: usize) -> Self {
        DlhtNoBatchAdapter {
            map: Arc::new(DlhtMap::with_capacity(capacity)),
        }
    }

    /// Wrap an explicit configuration.
    pub fn with_config(config: DlhtConfig) -> Self {
        DlhtNoBatchAdapter {
            map: Arc::new(DlhtMap::with_config(config)),
        }
    }
}

impl ConcurrentMap for DlhtNoBatchAdapter {
    fn get(&self, key: u64) -> Option<u64> {
        self.map.get(key)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        matches!(self.map.insert(key, value), Ok(o) if o.inserted())
    }

    fn update(&self, key: u64, value: u64) -> bool {
        self.map.put(key, value).is_some()
    }

    fn remove(&self, key: u64) -> bool {
        self.map.delete(key).is_some()
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn name(&self) -> &'static str {
        "DLHT-NoBatch"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures {
            overlaps_memory_accesses: false,
            ..dlht_features()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::conformance;

    #[test]
    fn adapter_basic_semantics() {
        conformance::basic_semantics(&DlhtAdapter::with_capacity(1024));
        conformance::basic_semantics(&DlhtNoBatchAdapter::with_capacity(1024));
    }

    #[test]
    fn adapter_concurrent_inserts() {
        conformance::concurrent_inserts(&DlhtAdapter::with_capacity(50_000), 2_000);
    }

    #[test]
    fn batch_conversion_roundtrips() {
        let m = DlhtAdapter::with_capacity(256);
        let ops = vec![
            BatchOp::Insert(1, 10),
            BatchOp::Get(1),
            BatchOp::Put(1, 11),
            BatchOp::Get(1),
            BatchOp::Delete(1),
            BatchOp::Get(1),
        ];
        let mut out = Vec::new();
        m.execute_batch(&ops, &mut out);
        assert_eq!(out[1], BatchResult::Value(Some(10)));
        assert_eq!(out[3], BatchResult::Value(Some(11)));
        assert_eq!(out[5], BatchResult::Value(None));
    }
}
