//! Adapters exposing DLHT itself through the common [`KvBackend`] interface,
//! in two flavours matching Table 3: `DLHT` (with batching / software
//! prefetching) and `DLHT-NoBatch`.
//!
//! `DlhtMap` implements [`KvBackend`] directly; these wrappers exist to pin
//! the Table 3 display names and, for the NoBatch variant, to turn the batch
//! entry point into a plain per-request loop so memory latencies are not
//! overlapped.

use dlht_core::{
    Batch, BatchPolicy, DlhtConfig, DlhtError, DlhtMap, InsertOutcome, KvBackend, MapFeatures,
    Request, Response, ShardedTable, TableStats,
};
use std::sync::Arc;

/// DLHT with its batching (software prefetching) API.
pub struct DlhtAdapter {
    map: Arc<DlhtMap>,
}

impl DlhtAdapter {
    /// Wrap a DLHT instance sized for `capacity` keys.
    pub fn with_capacity(capacity: usize) -> Self {
        DlhtAdapter {
            map: Arc::new(DlhtMap::with_capacity(capacity)),
        }
    }

    /// Wrap an explicit configuration.
    pub fn with_config(config: DlhtConfig) -> Self {
        DlhtAdapter {
            map: Arc::new(DlhtMap::with_config(config)),
        }
    }

    /// Access the wrapped map.
    pub fn inner(&self) -> &DlhtMap {
        &self.map
    }
}

impl KvBackend for DlhtAdapter {
    fn get(&self, key: u64) -> Option<u64> {
        self.map.get(key)
    }

    fn contains(&self, key: u64) -> bool {
        self.map.contains(key)
    }

    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        self.map.insert(key, value)
    }

    fn put(&self, key: u64, value: u64) -> Option<u64> {
        self.map.put(key, value)
    }

    fn delete(&self, key: u64) -> Option<u64> {
        self.map.delete(key)
    }

    fn upsert(&self, key: u64, value: u64) -> Result<Option<u64>, DlhtError> {
        self.map.upsert(key, value)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn name(&self) -> &'static str {
        "DLHT"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures::dlht()
    }

    fn stats(&self) -> TableStats {
        self.map.stats()
    }

    fn retired_indexes(&self) -> usize {
        self.map.raw().retired_indexes()
    }

    fn supports_batching(&self) -> bool {
        true
    }

    fn prefetch_key(&self, key: u64) {
        self.map.prefetch(key)
    }

    fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        self.map.execute(batch, policy)
    }

    fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        self.map.execute_prefetched(batch, policy)
    }

    fn execute_batch(&self, requests: &[Request], policy: BatchPolicy) -> Vec<Response> {
        self.map.execute_batch(requests, policy)
    }
}

/// DLHT without the batching API (`DLHT-NoBatch` in Table 3): identical
/// algorithms, but requests are issued one at a time so memory latencies are
/// not overlapped.
pub struct DlhtNoBatchAdapter {
    map: Arc<DlhtMap>,
}

impl DlhtNoBatchAdapter {
    /// Wrap a DLHT instance sized for `capacity` keys.
    pub fn with_capacity(capacity: usize) -> Self {
        DlhtNoBatchAdapter {
            map: Arc::new(DlhtMap::with_capacity(capacity)),
        }
    }

    /// Wrap an explicit configuration.
    pub fn with_config(config: DlhtConfig) -> Self {
        DlhtNoBatchAdapter {
            map: Arc::new(DlhtMap::with_config(config)),
        }
    }
}

impl KvBackend for DlhtNoBatchAdapter {
    fn get(&self, key: u64) -> Option<u64> {
        self.map.get(key)
    }

    fn contains(&self, key: u64) -> bool {
        self.map.contains(key)
    }

    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        self.map.insert(key, value)
    }

    fn put(&self, key: u64, value: u64) -> Option<u64> {
        self.map.put(key, value)
    }

    fn delete(&self, key: u64) -> Option<u64> {
        self.map.delete(key)
    }

    fn upsert(&self, key: u64, value: u64) -> Result<Option<u64>, DlhtError> {
        self.map.upsert(key, value)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn name(&self) -> &'static str {
        "DLHT-NoBatch"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures {
            overlaps_memory_accesses: false,
            ..MapFeatures::dlht()
        }
    }

    fn stats(&self) -> TableStats {
        self.map.stats()
    }

    fn retired_indexes(&self) -> usize {
        self.map.raw().retired_indexes()
    }

    // supports_batching stays false and execute stays the default per-request
    // loop (and prefetch_key the default no-op): no prefetch sweep, no
    // enter/leave amortization.
}

/// Display name for a sharded-DLHT front of `shards` shards. Applies the
/// same power-of-two rounding as `ShardedTable` itself, so the label always
/// matches the table actually built — the single source of truth shared by
/// [`ShardedDlhtAdapter`] and `MapKind::name`.
pub(crate) fn sharded_display_name(shards: usize) -> &'static str {
    match shards.max(1).next_power_of_two() {
        1 => "DLHT-1shard",
        2 => "DLHT-2shards",
        4 => "DLHT-4shards",
        8 => "DLHT-8shards",
        16 => "DLHT-16shards",
        _ => "DLHT-Sharded",
    }
}

/// The shard-partitioned DLHT front (`ShardedTable`) with a display name
/// that spells out its fan-out, so sweep tables comparing several shard
/// counts stay readable.
pub struct ShardedDlhtAdapter {
    table: ShardedTable,
    name: &'static str,
}

impl ShardedDlhtAdapter {
    /// Wrap a sharded table of `shards` shards sized for `capacity` keys in
    /// total.
    pub fn with_capacity(shards: usize, capacity: usize) -> Self {
        let table = ShardedTable::with_capacity(shards, capacity);
        let name = sharded_display_name(table.num_shards());
        ShardedDlhtAdapter { table, name }
    }

    /// Access the wrapped sharded table (per-shard stats, sessions).
    pub fn inner(&self) -> &ShardedTable {
        &self.table
    }
}

impl KvBackend for ShardedDlhtAdapter {
    fn get(&self, key: u64) -> Option<u64> {
        self.table.get(key)
    }

    fn contains(&self, key: u64) -> bool {
        self.table.contains(key)
    }

    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        self.table.insert(key, value)
    }

    fn put(&self, key: u64, value: u64) -> Option<u64> {
        self.table.put(key, value)
    }

    fn delete(&self, key: u64) -> Option<u64> {
        self.table.delete(key)
    }

    fn upsert(&self, key: u64, value: u64) -> Result<Option<u64>, DlhtError> {
        self.table.upsert(key, value)
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn features(&self) -> MapFeatures {
        MapFeatures::dlht()
    }

    fn stats(&self) -> TableStats {
        self.table.stats()
    }

    fn retired_indexes(&self) -> usize {
        self.table.retired_indexes()
    }

    fn supports_batching(&self) -> bool {
        true
    }

    fn prefetch_key(&self, key: u64) {
        self.table.prefetch(key)
    }

    fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        self.table.execute(batch, policy)
    }

    fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        self.table.execute_prefetched(batch, policy)
    }

    fn execute_batch(&self, requests: &[Request], policy: BatchPolicy) -> Vec<Response> {
        self.table.execute_batch(requests, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn adapter_basic_semantics() {
        conformance::basic_semantics(&DlhtAdapter::with_capacity(1024));
        conformance::basic_semantics(&DlhtNoBatchAdapter::with_capacity(1024));
    }

    #[test]
    fn adapter_concurrent_inserts() {
        conformance::concurrent_inserts(&DlhtAdapter::with_capacity(50_000), 2_000);
    }

    #[test]
    fn batched_requests_resolve_in_order() {
        let m = DlhtAdapter::with_capacity(256);
        let reqs = vec![
            Request::Insert(1, 10),
            Request::Get(1),
            Request::Put(1, 11),
            Request::Get(1),
            Request::Delete(1),
            Request::Get(1),
        ];
        let out = m.execute_batch(&reqs, BatchPolicy::RunAll);
        assert_eq!(out[1], Response::Value(Some(10)));
        assert_eq!(out[2], Response::Updated(Some(10)));
        assert_eq!(out[3], Response::Value(Some(11)));
        assert_eq!(out[4], Response::Deleted(Some(11)));
        assert_eq!(out[5], Response::Value(None));
    }

    #[test]
    fn nobatch_adapter_still_answers_batches_without_prefetching() {
        let m = DlhtNoBatchAdapter::with_capacity(64);
        assert!(!m.supports_batching());
        let out = m.execute_batch(
            &[Request::Insert(5, 50), Request::Get(5)],
            BatchPolicy::RunAll,
        );
        assert_eq!(out[1], Response::Value(Some(50)));
    }

    #[test]
    fn adapter_reuses_batch_storage() {
        let m = DlhtAdapter::with_capacity(256);
        let mut batch = Batch::with_capacity(2);
        for round in 0..4u64 {
            batch.clear();
            batch.push_insert(round, round);
            batch.push_get(round);
            m.execute(&mut batch, BatchPolicy::RunAll);
            assert_eq!(batch.responses()[1], Response::Value(Some(round)));
        }
        assert_eq!(m.len(), 4);
    }
}
