//! MICA-like baseline (CRCW variant): closed addressing, **lock-based**
//! writes, software prefetching for batches, but values are **not inlined**
//! in the index — every request chases a pointer into a separate value store,
//! and every Insert/Delete (de)allocates (Table 1, §2.2, §5.1.2).

use crate::api::{BatchOp, BatchResult, ConcurrentMap, MapFeatures};
use dlht_hash::{Hasher64, WyHash};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One bucket: a small spin-locked vector of (key, boxed value) entries —
/// the pointer indirection is the point: at least two memory accesses per
/// request even without collisions.
struct Bucket {
    entries: Mutex<Vec<(u64, Box<u64>)>>,
}

/// MICA-like lock-based, non-inlined, non-resizable map.
pub struct MicaLikeMap {
    buckets: Vec<Bucket>,
    live: AtomicUsize,
}

impl MicaLikeMap {
    /// Create a map with about one bucket per expected key.
    pub fn with_capacity(capacity: usize) -> Self {
        let buckets = capacity.max(16).next_power_of_two();
        MicaLikeMap {
            buckets: (0..buckets)
                .map(|_| Bucket {
                    entries: Mutex::new(Vec::new()),
                })
                .collect(),
            live: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> &Bucket {
        let h = WyHash.hash_u64(key);
        &self.buckets[(h as usize) & (self.buckets.len() - 1)]
    }
}

impl ConcurrentMap for MicaLikeMap {
    fn get(&self, key: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        let entries = b.entries.lock();
        entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| **v)
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        let b = self.bucket_of(key);
        let mut entries = b.entries.lock();
        if entries.iter().any(|(k, _)| *k == key) {
            return false;
        }
        // The allocation per insert is intentional (non-inlined design).
        entries.push((key, Box::new(value)));
        self.live.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn update(&self, key: u64, value: u64) -> bool {
        let b = self.bucket_of(key);
        let mut entries = b.entries.lock();
        if let Some((_, v)) = entries.iter_mut().find(|(k, _)| *k == key) {
            **v = value;
            true
        } else {
            false
        }
    }

    fn remove(&self, key: u64) -> bool {
        let b = self.bucket_of(key);
        let mut entries = b.entries.lock();
        if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
            // Deallocation per delete, as in MICA's non-inlined store.
            entries.swap_remove(pos);
            self.live.fetch_sub(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    fn name(&self) -> &'static str {
        "MICA-like"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures {
            collision_handling: "closed-addressing",
            lock_free_gets: true,
            non_blocking_puts: false, // lock-based
            non_blocking_inserts: false,
            deletes_free_slots: true,
            resizable: false,
            non_blocking_resize: false,
            overlaps_memory_accesses: true,
            inline_values: false,
        }
    }

    fn supports_batching(&self) -> bool {
        true
    }

    /// Batched execution with a prefetch sweep (MICA pioneered this
    /// technique); requests execute in order.
    fn execute_batch(&self, ops: &[BatchOp], out: &mut Vec<BatchResult>) {
        out.clear();
        for op in ops {
            dlht_core::prefetch::prefetch_read(self.bucket_of(op.key()) as *const Bucket);
        }
        for op in ops {
            out.push(match *op {
                BatchOp::Get(k) => BatchResult::Value(self.get(k)),
                BatchOp::Put(k, v) => BatchResult::Applied(self.update(k, v)),
                BatchOp::Insert(k, v) => BatchResult::Applied(self.insert(k, v)),
                BatchOp::Delete(k) => BatchResult::Applied(self.remove(k)),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::conformance;

    #[test]
    fn basic_semantics() {
        conformance::basic_semantics(&MicaLikeMap::with_capacity(1024));
    }

    #[test]
    fn concurrent_inserts() {
        conformance::concurrent_inserts(&MicaLikeMap::with_capacity(50_000), 2_000);
    }

    #[test]
    fn collisions_chain_in_the_bucket() {
        let m = MicaLikeMap::with_capacity(16);
        for k in 0..200u64 {
            assert!(m.insert(k, k + 1));
        }
        assert_eq!(m.len(), 200);
        for k in 0..200u64 {
            assert_eq!(m.get(k), Some(k + 1));
        }
    }

    #[test]
    fn batch_executes_in_order() {
        let m = MicaLikeMap::with_capacity(64);
        let ops = vec![
            BatchOp::Insert(1, 1),
            BatchOp::Put(1, 2),
            BatchOp::Get(1),
            BatchOp::Delete(1),
            BatchOp::Get(1),
        ];
        let mut out = Vec::new();
        m.execute_batch(&ops, &mut out);
        assert_eq!(out[2], BatchResult::Value(Some(2)));
        assert_eq!(out[4], BatchResult::Value(None));
    }
}
