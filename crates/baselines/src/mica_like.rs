//! MICA-like baseline (CRCW variant): closed addressing, **lock-based**
//! writes, software prefetching for batches, but values are **not inlined**
//! in the index — every request chases a pointer into a separate value store,
//! and every Insert/Delete (de)allocates (Table 1, §2.2, §5.1.2).

use dlht_core::{DlhtError, InsertOutcome, KvBackend, MapFeatures};
use dlht_hash::{Hasher64, WyHash};
use dlht_util::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One bucket: a small spin-locked vector of (key, boxed value) entries —
/// the pointer indirection is the point: at least two memory accesses per
/// request even without collisions.
struct Bucket {
    entries: Mutex<Vec<(u64, Box<u64>)>>,
}

/// MICA-like lock-based, non-inlined, non-resizable map.
pub struct MicaLikeMap {
    buckets: Vec<Bucket>,
    live: AtomicUsize,
}

impl MicaLikeMap {
    /// Create a map with about one bucket per expected key.
    pub fn with_capacity(capacity: usize) -> Self {
        let buckets = capacity.max(16).next_power_of_two();
        MicaLikeMap {
            buckets: (0..buckets)
                .map(|_| Bucket {
                    entries: Mutex::new(Vec::new()),
                })
                .collect(),
            live: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> &Bucket {
        let h = WyHash.hash_u64(key);
        &self.buckets[(h as usize) & (self.buckets.len() - 1)]
    }
}

impl KvBackend for MicaLikeMap {
    fn get(&self, key: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        let entries = b.entries.lock();
        entries.iter().find(|(k, _)| *k == key).map(|(_, v)| **v)
    }

    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        if dlht_core::bucket::is_reserved_key(key) {
            return Err(DlhtError::ReservedKey);
        }
        let b = self.bucket_of(key);
        let mut entries = b.entries.lock();
        if let Some((_, v)) = entries.iter().find(|(k, _)| *k == key) {
            return Ok(InsertOutcome::AlreadyExists(**v));
        }
        // The allocation per insert is intentional (non-inlined design).
        entries.push((key, Box::new(value)));
        self.live.fetch_add(1, Ordering::Relaxed);
        Ok(InsertOutcome::Inserted)
    }

    fn put(&self, key: u64, value: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        let mut entries = b.entries.lock();
        if let Some((_, v)) = entries.iter_mut().find(|(k, _)| *k == key) {
            let prev = **v;
            **v = value;
            Some(prev)
        } else {
            None
        }
    }

    fn delete(&self, key: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        let mut entries = b.entries.lock();
        if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
            // Deallocation per delete, as in MICA's non-inlined store.
            let (_, v) = entries.swap_remove(pos);
            self.live.fetch_sub(1, Ordering::Relaxed);
            Some(*v)
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    fn name(&self) -> &'static str {
        "MICA-like"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures {
            collision_handling: "closed-addressing",
            lock_free_gets: true,
            non_blocking_puts: false, // lock-based
            non_blocking_inserts: false,
            deletes_free_slots: true,
            resizable: false,
            non_blocking_resize: false,
            overlaps_memory_accesses: true,
            inline_values: false,
        }
    }

    fn supports_batching(&self) -> bool {
        true
    }

    fn prefetch_key(&self, key: u64) {
        dlht_core::prefetch::prefetch_read(self.bucket_of(key) as *const Bucket);
    }

    /// Batched execution with a prefetch sweep (MICA pioneered this
    /// technique); requests then execute in order through the shared serial
    /// loop, so the batch contract lives in one place.
    fn execute(&self, batch: &mut dlht_core::Batch, policy: dlht_core::BatchPolicy) {
        for req in batch.requests() {
            dlht_core::prefetch::prefetch_read(self.bucket_of(req.key()) as *const Bucket);
        }
        dlht_core::kv::execute_serial(self, batch, policy)
    }

    /// Pipeline flushes arrive with every bucket already prefetched at
    /// submit time — skip the sweep.
    fn execute_prefetched(&self, batch: &mut dlht_core::Batch, policy: dlht_core::BatchPolicy) {
        dlht_core::kv::execute_serial(self, batch, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;
    use dlht_core::{Request, Response};

    #[test]
    fn basic_semantics() {
        conformance::basic_semantics(&MicaLikeMap::with_capacity(1024));
    }

    #[test]
    fn concurrent_inserts() {
        conformance::concurrent_inserts(&MicaLikeMap::with_capacity(50_000), 2_000);
    }

    #[test]
    fn collisions_chain_in_the_bucket() {
        let m = MicaLikeMap::with_capacity(16);
        for k in 0..200u64 {
            assert!(m.insert(k, k + 1).unwrap().inserted());
        }
        assert_eq!(m.len(), 200);
        for k in 0..200u64 {
            assert_eq!(m.get(k), Some(k + 1));
        }
    }

    #[test]
    fn batch_executes_in_order() {
        let m = MicaLikeMap::with_capacity(64);
        let reqs = vec![
            Request::Insert(1, 1),
            Request::Put(1, 2),
            Request::Get(1),
            Request::Delete(1),
            Request::Get(1),
        ];
        let out = m.execute_batch(&reqs, dlht_core::BatchPolicy::RunAll);
        assert_eq!(out[1], Response::Updated(Some(1)));
        assert_eq!(out[2], Response::Value(Some(2)));
        assert_eq!(out[3], Response::Deleted(Some(2)));
        assert_eq!(out[4], Response::Value(None));
    }
}
