//! Leapfrog-(Junction-)like baseline: lock-free open addressing with
//! quadratic probing, no software prefetching, and tombstone deletes
//! (Figure 1's `Leapfrog` bar; dropped from later graphs because, like Cuckoo
//! and TBB, it stays below 250 M req/s in the paper's testbed).

use crate::open_addr::{is_unsupported_key, CellArray, InsertCell};
use dlht_core::{DlhtError, InsertOutcome, KvBackend, MapFeatures};

const MAX_PROBES: u64 = 128;

/// Leapfrog-like fixed-capacity map with quadratic probing.
pub struct LeapfrogLikeMap {
    cells: CellArray,
}

impl LeapfrogLikeMap {
    /// Create a map with room for about `capacity` keys at ~60% load.
    pub fn with_capacity(capacity: usize) -> Self {
        LeapfrogLikeMap {
            cells: CellArray::new(capacity * 5 / 3),
        }
    }
}

impl KvBackend for LeapfrogLikeMap {
    fn get(&self, key: u64) -> Option<u64> {
        if is_unsupported_key(key) {
            return None;
        }
        self.cells.get(key, MAX_PROBES, true)
    }

    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        if is_unsupported_key(key) {
            return Err(DlhtError::ReservedKey);
        }
        match self.cells.insert(key, value, MAX_PROBES, true) {
            InsertCell::Inserted => Ok(InsertOutcome::Inserted),
            InsertCell::Exists(v) => Ok(InsertOutcome::AlreadyExists(v)),
            InsertCell::Full => Err(DlhtError::TableFull),
        }
    }

    fn put(&self, key: u64, value: u64) -> Option<u64> {
        if is_unsupported_key(key) {
            return None;
        }
        self.cells.update(key, value, MAX_PROBES, true)
    }

    fn delete(&self, key: u64) -> Option<u64> {
        if is_unsupported_key(key) {
            return None;
        }
        self.cells.remove(key, MAX_PROBES, true)
    }

    fn len(&self) -> usize {
        self.cells.live()
    }

    fn name(&self) -> &'static str {
        "Leapfrog-like"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures {
            collision_handling: "open-addressing",
            lock_free_gets: true,
            non_blocking_puts: true,
            non_blocking_inserts: true,
            deletes_free_slots: false,
            resizable: false,
            non_blocking_resize: false,
            overlaps_memory_accesses: false,
            inline_values: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn basic_semantics() {
        conformance::basic_semantics(&LeapfrogLikeMap::with_capacity(1024));
    }

    #[test]
    fn concurrent_inserts() {
        conformance::concurrent_inserts(&LeapfrogLikeMap::with_capacity(50_000), 2_000);
    }
}
