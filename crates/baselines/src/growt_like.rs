//! GrowT-like baseline: open addressing with tombstone deletes and a
//! **parallel but blocking** migration to a new table (Table 1, §2.2, §5.1.2).
//!
//! Properties reproduced from the paper's description of (ua)GrowT:
//!
//! * lock-free Gets/Puts/Inserts on a linear-probing cell array;
//! * Deletes are tombstones that permanently consume cells; reclaiming them
//!   requires moving every live element to a new table;
//! * the table rebuilds when fill (live + tombstones) exceeds ~30% — the
//!   occupancy threshold the paper quotes from GrowT's codebase — or when a
//!   probe sequence is exhausted;
//! * during a migration **all** operations block until every element has been
//!   copied (here: a writer lock held for the whole migration).

use crate::open_addr::{is_unsupported_key, CellArray, InsertCell};
use dlht_core::{DlhtError, InsertOutcome, KvBackend, MapFeatures};
use dlht_util::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

const MAX_PROBES: u64 = 128;
/// Rebuild when fill (live + tombstones) exceeds this fraction, per the 30%
/// threshold the paper cites from GrowT's codebase (§5.1.5).
const FILL_THRESHOLD: f64 = 0.30;

/// GrowT-like resizable open-addressing map.
pub struct GrowtLikeMap {
    inner: RwLock<CellArray>,
    migrations: AtomicU64,
}

impl GrowtLikeMap {
    /// Create a map able to hold about `capacity` live keys before the first
    /// migration (capacity / threshold cells).
    pub fn with_capacity(capacity: usize) -> Self {
        let cells = ((capacity as f64 / FILL_THRESHOLD) as usize).max(64);
        GrowtLikeMap {
            inner: RwLock::new(CellArray::new(cells)),
            migrations: AtomicU64::new(0),
        }
    }

    /// Number of full-table migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations.load(Ordering::Relaxed)
    }

    /// Blocking migration: copy every live element to a fresh table. The new
    /// size doubles only if the live population justifies it — an
    /// InsDel-heavy workload mostly rebuilds at the same size to shed
    /// tombstones, which is exactly the behaviour that makes GrowT 12.8×
    /// slower than DLHT on the InsDel workload (§5.1.2).
    fn migrate(&self) {
        let mut guard = self.inner.write();
        // Re-check under the lock: another thread may have just migrated.
        if guard.fill_ratio() < FILL_THRESHOLD {
            return;
        }
        let live = guard.live();
        let target_cells = if (live as f64) > guard.capacity() as f64 * FILL_THRESHOLD / 2.0 {
            guard.capacity() * 2
        } else {
            guard.capacity()
        };
        loop {
            let new = CellArray::new(target_cells);
            let mut ok = true;
            guard.for_each(|k, v| {
                if ok && matches!(new.insert(k, v, MAX_PROBES, false), InsertCell::Full) {
                    ok = false;
                }
            });
            if ok {
                *guard = new;
                break;
            }
        }
        self.migrations.fetch_add(1, Ordering::Relaxed);
    }
}

impl KvBackend for GrowtLikeMap {
    fn get(&self, key: u64) -> Option<u64> {
        if is_unsupported_key(key) {
            return None;
        }
        self.inner.read().get(key, MAX_PROBES, false)
    }

    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        if is_unsupported_key(key) {
            return Err(DlhtError::ReservedKey);
        }
        loop {
            {
                let guard = self.inner.read();
                if guard.fill_ratio() < FILL_THRESHOLD {
                    match guard.insert(key, value, MAX_PROBES, false) {
                        InsertCell::Inserted => return Ok(InsertOutcome::Inserted),
                        InsertCell::Exists(v) => return Ok(InsertOutcome::AlreadyExists(v)),
                        InsertCell::Full => {}
                    }
                }
            }
            self.migrate();
        }
    }

    fn put(&self, key: u64, value: u64) -> Option<u64> {
        if is_unsupported_key(key) {
            return None;
        }
        self.inner.read().update(key, value, MAX_PROBES, false)
    }

    fn delete(&self, key: u64) -> Option<u64> {
        if is_unsupported_key(key) {
            return None;
        }
        self.inner.read().remove(key, MAX_PROBES, false)
    }

    fn len(&self) -> usize {
        self.inner.read().live()
    }

    fn name(&self) -> &'static str {
        "GrowT-like"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures {
            collision_handling: "open-addressing",
            lock_free_gets: true,
            non_blocking_puts: true,
            non_blocking_inserts: true,
            deletes_free_slots: false,
            resizable: true,
            non_blocking_resize: false,
            overlaps_memory_accesses: false,
            inline_values: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn basic_semantics() {
        conformance::basic_semantics(&GrowtLikeMap::with_capacity(1024));
    }

    #[test]
    fn concurrent_inserts() {
        conformance::concurrent_inserts(&GrowtLikeMap::with_capacity(50_000), 2_000);
    }

    #[test]
    fn insdel_workload_forces_repeated_migrations() {
        // The paper's InsDel pattern: insert a key, delete it, repeat. With
        // tombstones this keeps filling the table and forcing blocking
        // migrations even though only one key is ever alive.
        let m = GrowtLikeMap::with_capacity(256);
        for k in 0..20_000u64 {
            assert!(m.insert(k, k).unwrap().inserted(), "insert {k}");
            assert_eq!(m.delete(k), Some(k), "delete {k}");
        }
        assert!(
            m.migrations() >= 5,
            "expected many migrations, saw {}",
            m.migrations()
        );
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn growth_preserves_contents() {
        let m = GrowtLikeMap::with_capacity(64);
        for k in 0..10_000u64 {
            assert!(m.insert(k, k * 7).unwrap().inserted());
        }
        assert!(m.migrations() > 0);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k), Some(k * 7));
        }
        assert_eq!(m.len(), 10_000);
    }
}
