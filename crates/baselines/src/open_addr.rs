//! Shared open-addressing machinery for the GrowT-, Folly-, DRAMHiT- and
//! Leapfrog-like baselines.
//!
//! All four designs in the paper's comparison set are open-addressing tables
//! whose cells are CAS-managed (key word + value word) and whose Deletes are
//! **tombstones** that permanently occupy cells until (if ever) the whole
//! table is rebuilt (§2.2). This module provides that common cell array; each
//! baseline wraps it with its own probing, resize, and batching policy.

use dlht_hash::{Hasher64, WyHash};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Internal cell-key sentinel: never written for user keys.
pub const EMPTY: u64 = 0;
/// Internal cell-key sentinel for deleted entries.
pub const TOMBSTONE: u64 = 1;
/// Internal cell-key sentinel: an insert has claimed the cell but not yet
/// published its key (readers briefly spin, inserters keep probing after it
/// resolves).
pub const LOCKED: u64 = 2;

/// Encode a user key into the internal cell representation.
///
/// The top three key values map onto the sentinels and are rejected by the
/// wrappers (DLHT similarly reserves `u64::MAX` and `u64::MAX - 1`).
#[inline]
pub fn encode_key(key: u64) -> u64 {
    key.wrapping_add(3)
}

/// Whether a user key collides with the sentinels.
#[inline]
pub fn is_unsupported_key(key: u64) -> bool {
    let e = encode_key(key);
    e == EMPTY || e == TOMBSTONE || e == LOCKED
}

/// A fixed-size array of open-addressing cells.
pub struct CellArray {
    keys: Vec<AtomicU64>,
    vals: Vec<AtomicU64>,
    /// Live entries (inserted minus deleted).
    live: AtomicUsize,
    /// Cells consumed (inserted, including those later tombstoned).
    used: AtomicUsize,
    mask: u64,
}

/// Result of probing for an insert.
pub enum InsertCell {
    /// Inserted into a fresh cell.
    Inserted,
    /// The key already exists (value word returned).
    Exists(u64),
    /// The probe sequence was exhausted: the table is (locally) full.
    Full,
}

impl CellArray {
    /// Create an array with at least `capacity` cells (rounded to a power of
    /// two).
    pub fn new(capacity: usize) -> Self {
        let cells = capacity.max(8).next_power_of_two();
        CellArray {
            keys: (0..cells).map(|_| AtomicU64::new(EMPTY)).collect(),
            vals: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            live: AtomicUsize::new(0),
            used: AtomicUsize::new(0),
            mask: cells as u64 - 1,
        }
    }

    /// Number of cells.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Live entries.
    #[inline]
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Cells consumed by inserts (live + tombstoned).
    #[inline]
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Fraction of cells consumed (live + tombstones) — the quantity that
    /// forces tombstone-based designs to rebuild.
    pub fn fill_ratio(&self) -> f64 {
        self.used() as f64 / self.capacity() as f64
    }

    #[inline]
    fn slot_of(&self, key: u64, probe: u64, quadratic: bool) -> usize {
        let h = WyHash.hash_u64(key);
        let offset = if quadratic {
            probe * (probe + 1) / 2
        } else {
            probe
        };
        ((h.wrapping_add(offset)) & self.mask) as usize
    }

    /// Address of the home cell for a key (for prefetching).
    pub fn home_cell_ptr(&self, key: u64) -> *const AtomicU64 {
        &self.keys[self.slot_of(key, 0, false)] as *const AtomicU64
    }

    /// Load a cell's key, spinning through the transient `LOCKED` state.
    #[inline]
    fn cell_key(&self, idx: usize) -> u64 {
        loop {
            let cell = self.keys[idx].load(Ordering::Acquire);
            if cell != LOCKED {
                return cell;
            }
            std::hint::spin_loop();
        }
    }

    /// Probe for `key`; `max_probes` bounds the scan.
    pub fn get(&self, key: u64, max_probes: u64, quadratic: bool) -> Option<u64> {
        let enc = encode_key(key);
        for p in 0..max_probes {
            let idx = self.slot_of(key, p, quadratic);
            let cell = self.cell_key(idx);
            if cell == enc {
                return Some(self.vals[idx].load(Ordering::Acquire));
            }
            if cell == EMPTY {
                return None;
            }
            // TOMBSTONE or another key: keep probing.
        }
        None
    }

    /// Insert `key` if absent. Tombstoned cells are **not** reused — exactly
    /// the limitation the paper criticizes in open-addressing deletes.
    pub fn insert(&self, key: u64, value: u64, max_probes: u64, quadratic: bool) -> InsertCell {
        let enc = encode_key(key);
        for p in 0..max_probes {
            let idx = self.slot_of(key, p, quadratic);
            loop {
                let cell = self.cell_key(idx);
                if cell == enc {
                    return InsertCell::Exists(self.vals[idx].load(Ordering::Acquire));
                }
                if cell == EMPTY {
                    // Claim the cell, publish the value, then publish the key.
                    match self.keys[idx].compare_exchange(
                        EMPTY,
                        LOCKED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            self.vals[idx].store(value, Ordering::Release);
                            self.keys[idx].store(enc, Ordering::Release);
                            self.live.fetch_add(1, Ordering::Relaxed);
                            self.used.fetch_add(1, Ordering::Relaxed);
                            return InsertCell::Inserted;
                        }
                        Err(_) => continue, // someone claimed this cell; re-examine it
                    }
                }
                break; // occupied by another key or a tombstone: next probe
            }
        }
        InsertCell::Full
    }

    /// Update an existing key with a plain store on the value word; returns
    /// the previous value. (Like the designs it stands in for, the "previous
    /// value" read is not atomic with the store under racing updaters.)
    pub fn update(&self, key: u64, value: u64, max_probes: u64, quadratic: bool) -> Option<u64> {
        let enc = encode_key(key);
        for p in 0..max_probes {
            let idx = self.slot_of(key, p, quadratic);
            let cell = self.cell_key(idx);
            if cell == enc {
                let prev = self.vals[idx].load(Ordering::Acquire);
                self.vals[idx].store(value, Ordering::Release);
                return Some(prev);
            }
            if cell == EMPTY {
                return None;
            }
        }
        None
    }

    /// Tombstone `key`, returning its value. The cell is *not* freed for
    /// reuse.
    pub fn remove(&self, key: u64, max_probes: u64, quadratic: bool) -> Option<u64> {
        let enc = encode_key(key);
        for p in 0..max_probes {
            let idx = self.slot_of(key, p, quadratic);
            let cell = self.cell_key(idx);
            if cell == enc {
                let prev = self.vals[idx].load(Ordering::Acquire);
                if self.keys[idx]
                    .compare_exchange(enc, TOMBSTONE, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    self.live.fetch_sub(1, Ordering::Relaxed);
                    return Some(prev);
                }
                return None;
            }
            if cell == EMPTY {
                return None;
            }
        }
        None
    }

    /// Visit every live pair.
    pub fn for_each(&self, mut f: impl FnMut(u64, u64)) {
        for i in 0..self.keys.len() {
            let cell = self.keys[i].load(Ordering::Acquire);
            if cell != EMPTY && cell != TOMBSTONE && cell != LOCKED {
                f(cell.wrapping_sub(3), self.vals[i].load(Ordering::Acquire));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_encoding_reserves_only_the_top_keys() {
        assert!(is_unsupported_key(u64::MAX));
        assert!(is_unsupported_key(u64::MAX - 1));
        assert!(is_unsupported_key(u64::MAX - 2));
        assert!(!is_unsupported_key(0));
        assert_eq!(encode_key(0), 3);
    }

    #[test]
    fn insert_get_update_remove() {
        let a = CellArray::new(64);
        assert!(matches!(a.insert(5, 50, 64, false), InsertCell::Inserted));
        assert!(matches!(a.insert(5, 51, 64, false), InsertCell::Exists(50)));
        assert_eq!(a.get(5, 64, false), Some(50));
        assert_eq!(a.update(5, 52, 64, false), Some(50));
        assert_eq!(a.get(5, 64, false), Some(52));
        assert_eq!(a.remove(5, 64, false), Some(52));
        assert_eq!(a.get(5, 64, false), None);
        assert_eq!(a.remove(5, 64, false), None);
        assert_eq!(a.live(), 0);
        assert_eq!(a.used(), 1, "tombstoned cell stays consumed");
    }

    #[test]
    fn tombstones_fill_the_table() {
        let a = CellArray::new(16);
        // Insert+delete more keys than the capacity: eventually Full because
        // tombstones are never reclaimed.
        let mut full = false;
        for k in 0..100u64 {
            match a.insert(k, k, 16, false) {
                InsertCell::Inserted => {
                    a.remove(k, 16, false);
                }
                InsertCell::Full => {
                    full = true;
                    break;
                }
                InsertCell::Exists(_) => unreachable!(),
            }
        }
        assert!(full, "tombstones must eventually exhaust the table");
        assert_eq!(a.live(), 0);
        assert!(a.fill_ratio() > 0.9);
    }

    #[test]
    fn quadratic_probing_also_terminates() {
        let a = CellArray::new(32);
        for k in 0..20u64 {
            assert!(matches!(a.insert(k, k, 32, true), InsertCell::Inserted));
        }
        for k in 0..20u64 {
            assert_eq!(a.get(k, 32, true), Some(k));
        }
    }

    #[test]
    fn concurrent_inserts_unique_winner() {
        use std::sync::atomic::AtomicUsize;
        let a = CellArray::new(1 << 14);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for k in 0..2_000u64 {
                        if matches!(a.insert(k, k, 128, false), InsertCell::Inserted) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 2_000);
        assert_eq!(a.live(), 2_000);
    }
}
