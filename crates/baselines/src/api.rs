//! Common interface implemented by DLHT and every baseline hashtable, so the
//! workload runner (`dlht-workloads`) can drive them interchangeably — the
//! role played by the paper's shared benchmark harness (§4).

/// A request in a batch submitted through [`ConcurrentMap::execute_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Look up a key.
    Get(u64),
    /// Update an existing key.
    Put(u64, u64),
    /// Insert a new key.
    Insert(u64, u64),
    /// Delete a key.
    Delete(u64),
}

impl BatchOp {
    /// The key the request targets.
    #[inline]
    pub fn key(&self) -> u64 {
        match *self {
            BatchOp::Get(k) | BatchOp::Put(k, _) | BatchOp::Insert(k, _) | BatchOp::Delete(k) => k,
        }
    }
}

/// The result of one batched request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchResult {
    /// `Get` result.
    Value(Option<u64>),
    /// Whether a `Put`/`Insert`/`Delete` took effect.
    Applied(bool),
}

/// Feature matrix entries used to regenerate Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapFeatures {
    /// "closed-addressing" or "open-addressing".
    pub collision_handling: &'static str,
    /// Non-blocking Gets.
    pub lock_free_gets: bool,
    /// Supports pure Puts (update-only) without locks.
    pub non_blocking_puts: bool,
    /// Supports pure Inserts without locks.
    pub non_blocking_inserts: bool,
    /// Deletes that immediately free index slots.
    pub deletes_free_slots: bool,
    /// Supports growing the index at all.
    pub resizable: bool,
    /// Resizes do not block all other operations.
    pub non_blocking_resize: bool,
    /// Uses software prefetching to overlap memory accesses.
    pub overlaps_memory_accesses: bool,
    /// Values (≤ 8 B) are stored inline in the index.
    pub inline_values: bool,
}

/// Thread-safe map over 8-byte keys and values, as evaluated in §5.
pub trait ConcurrentMap: Send + Sync {
    /// Look up `key`.
    fn get(&self, key: u64) -> Option<u64>;

    /// Insert `key -> value`. Returns `false` if the key already exists or the
    /// structure cannot accommodate it.
    fn insert(&self, key: u64, value: u64) -> bool;

    /// Update an existing key. Returns `false` if the key is absent (or the
    /// design cannot express a pure update).
    fn update(&self, key: u64, value: u64) -> bool;

    /// Remove `key`. Returns whether it was present.
    fn remove(&self, key: u64) -> bool;

    /// Insert if absent, else update.
    fn upsert(&self, key: u64, value: u64) {
        if !self.insert(key, value) {
            self.update(key, value);
        }
    }

    /// Number of live keys (may be linear-time).
    fn len(&self) -> usize;

    /// Whether the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short display name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Feature flags for Table 1.
    fn features(&self) -> MapFeatures;

    /// Whether [`ConcurrentMap::execute_batch`] actually overlaps memory
    /// accesses (software prefetching) rather than falling back to a loop.
    fn supports_batching(&self) -> bool {
        false
    }

    /// Execute a batch of requests. The default implementation simply loops;
    /// designs with software prefetching override it.
    fn execute_batch(&self, ops: &[BatchOp], out: &mut Vec<BatchResult>) {
        out.clear();
        for op in ops {
            out.push(match *op {
                BatchOp::Get(k) => BatchResult::Value(self.get(k)),
                BatchOp::Put(k, v) => BatchResult::Applied(self.update(k, v)),
                BatchOp::Insert(k, v) => BatchResult::Applied(self.insert(k, v)),
                BatchOp::Delete(k) => BatchResult::Applied(self.remove(k)),
            });
        }
    }
}

/// Blanket impl so `Arc<M>` / `Box<M>` can be used wherever a map is expected.
impl<M: ConcurrentMap + ?Sized> ConcurrentMap for std::sync::Arc<M> {
    fn get(&self, key: u64) -> Option<u64> {
        (**self).get(key)
    }
    fn insert(&self, key: u64, value: u64) -> bool {
        (**self).insert(key, value)
    }
    fn update(&self, key: u64, value: u64) -> bool {
        (**self).update(key, value)
    }
    fn remove(&self, key: u64) -> bool {
        (**self).remove(key)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn features(&self) -> MapFeatures {
        (**self).features()
    }
    fn supports_batching(&self) -> bool {
        (**self).supports_batching()
    }
    fn execute_batch(&self, ops: &[BatchOp], out: &mut Vec<BatchResult>) {
        (**self).execute_batch(ops, out)
    }
}

/// Shared conformance checks run against every implementation.
#[cfg(test)]
pub(crate) mod conformance {
    use super::*;

    /// Basic single-threaded semantics every map must satisfy.
    pub fn basic_semantics<M: ConcurrentMap>(map: &M) {
        let name = map.name();
        assert_eq!(map.get(1), None, "{name}");
        assert!(map.insert(1, 10), "{name}");
        assert!(!map.insert(1, 11), "{name}: duplicate insert must fail");
        assert_eq!(map.get(1), Some(10), "{name}");
        // Maps that support pure updates must reflect them; the rest must at
        // least leave the old value intact.
        if map.update(1, 12) {
            assert_eq!(map.get(1), Some(12), "{name}");
        } else {
            assert_eq!(map.get(1), Some(10), "{name}");
        }
        // Removal (tombstone or reclaiming) must hide the key from Gets.
        if map.remove(1) {
            assert_eq!(map.get(1), None, "{name}");
            assert!(!map.remove(1), "{name}: double remove must fail");
        }
        // Misses stay misses.
        assert_eq!(map.get(999), None, "{name}");
    }

    /// Concurrent smoke test: unique-winner inserts plus read stability.
    pub fn concurrent_inserts<M: ConcurrentMap>(map: &M, keys: u64) {
        use std::sync::atomic::{AtomicU64, Ordering};
        let wins = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for k in 0..keys {
                        if map.insert(k, k * 2) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), keys, "{}", map.name());
        for k in 0..keys {
            assert_eq!(map.get(k), Some(k * 2), "{} key {k}", map.name());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_op_key() {
        assert_eq!(BatchOp::Get(1).key(), 1);
        assert_eq!(BatchOp::Put(2, 0).key(), 2);
        assert_eq!(BatchOp::Insert(3, 0).key(), 3);
        assert_eq!(BatchOp::Delete(4).key(), 4);
    }
}
