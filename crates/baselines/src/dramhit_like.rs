//! DRAMHiT-like baseline: open addressing with an inlined index and software
//! prefetching over client batches, but **no resizing**, tombstone deletes
//! that cannot reclaim slots, upsert-only writes, and batches whose requests
//! may be **reordered** (Table 1, §2.2, §5.3.3).

use crate::api::{BatchOp, BatchResult, ConcurrentMap, MapFeatures};
use crate::open_addr::{is_unsupported_key, CellArray, InsertCell};

const MAX_PROBES: u64 = 256;

/// DRAMHiT-like batched open-addressing map.
pub struct DramhitLikeMap {
    cells: CellArray,
}

impl DramhitLikeMap {
    /// Create a map with room for about `capacity` keys at ~60% load.
    pub fn with_capacity(capacity: usize) -> Self {
        DramhitLikeMap {
            cells: CellArray::new(capacity * 5 / 3),
        }
    }

    /// The only write DRAMHiT exposes: insert-or-update.
    pub fn upsert_only(&self, key: u64, value: u64) -> bool {
        if is_unsupported_key(key) {
            return false;
        }
        match self.cells.insert(key, value, MAX_PROBES, false) {
            InsertCell::Inserted => true,
            InsertCell::Exists(_) => self.cells.update(key, value, MAX_PROBES, false),
            InsertCell::Full => false,
        }
    }
}

impl ConcurrentMap for DramhitLikeMap {
    fn get(&self, key: u64) -> Option<u64> {
        if is_unsupported_key(key) {
            return None;
        }
        self.cells.get(key, MAX_PROBES, false)
    }

    /// DRAMHiT cannot express a pure Insert: this may silently update.
    fn insert(&self, key: u64, value: u64) -> bool {
        if is_unsupported_key(key) {
            return false;
        }
        matches!(
            self.cells.insert(key, value, MAX_PROBES, false),
            InsertCell::Inserted
        )
    }

    /// DRAMHiT cannot express a pure Put either: this may silently insert.
    fn update(&self, key: u64, value: u64) -> bool {
        self.upsert_only(key, value)
    }

    fn remove(&self, key: u64) -> bool {
        if is_unsupported_key(key) {
            return false;
        }
        self.cells.remove(key, MAX_PROBES, false)
    }

    fn len(&self) -> usize {
        self.cells.live()
    }

    fn name(&self) -> &'static str {
        "DRAMHiT-like"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures {
            collision_handling: "open-addressing",
            lock_free_gets: true,
            non_blocking_puts: false, // only upserts
            non_blocking_inserts: false,
            deletes_free_slots: false,
            resizable: false,
            non_blocking_resize: false,
            overlaps_memory_accesses: true,
            inline_values: true,
        }
    }

    fn supports_batching(&self) -> bool {
        true
    }

    /// Batched execution with prefetching, but — faithfully to DRAMHiT — the
    /// requests are **reordered** (grouped by home cell) to maximize overlap.
    /// Results are written back in submission order, but their effects may
    /// interleave differently than submitted, which is what can deadlock a
    /// lock manager built on top (§5.3.3).
    fn execute_batch(&self, ops: &[BatchOp], out: &mut Vec<BatchResult>) {
        out.clear();
        out.resize(ops.len(), BatchResult::Value(None));
        // Prefetch sweep.
        for op in ops {
            dlht_core::prefetch::prefetch_read(self.cells.home_cell_ptr(op.key()));
        }
        // Reorder by home-cell address (asynchronous engine emulation).
        let mut order: Vec<usize> = (0..ops.len()).collect();
        order.sort_by_key(|&i| self.cells.home_cell_ptr(ops[i].key()) as usize);
        for i in order {
            out[i] = match ops[i] {
                BatchOp::Get(k) => BatchResult::Value(self.get(k)),
                BatchOp::Put(k, v) => BatchResult::Applied(self.update(k, v)),
                BatchOp::Insert(k, v) => BatchResult::Applied(self.insert(k, v)),
                BatchOp::Delete(k) => BatchResult::Applied(self.remove(k)),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::conformance;

    #[test]
    fn basic_semantics() {
        conformance::basic_semantics(&DramhitLikeMap::with_capacity(1024));
    }

    #[test]
    fn concurrent_inserts() {
        conformance::concurrent_inserts(&DramhitLikeMap::with_capacity(50_000), 2_000);
    }

    #[test]
    fn update_silently_inserts() {
        let m = DramhitLikeMap::with_capacity(64);
        assert!(m.update(5, 50), "upsert-only write must insert missing keys");
        assert_eq!(m.get(5), Some(50));
    }

    #[test]
    fn batch_results_follow_submission_order_even_if_execution_reorders() {
        let m = DramhitLikeMap::with_capacity(256);
        for k in 0..50u64 {
            m.insert(k, k);
        }
        let ops: Vec<BatchOp> = (0..50u64).rev().map(BatchOp::Get).collect();
        let mut out = Vec::new();
        m.execute_batch(&ops, &mut out);
        for (i, r) in out.iter().enumerate() {
            let expected_key = 49 - i as u64;
            assert_eq!(*r, BatchResult::Value(Some(expected_key)));
        }
    }

    #[test]
    fn batch_may_reorder_dependent_requests() {
        // Insert(k) followed by Delete(k') where k' hashes earlier can execute
        // out of order — demonstrate the behavioural difference from DLHT by
        // checking a dependent sequence is NOT guaranteed to succeed.
        let m = DramhitLikeMap::with_capacity(256);
        let ops = vec![BatchOp::Insert(10, 1), BatchOp::Get(10)];
        let mut out = Vec::new();
        m.execute_batch(&ops, &mut out);
        // Whatever the internal order, results land in submission slots.
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], BatchResult::Applied(_)));
        assert!(matches!(out[1], BatchResult::Value(_)));
    }
}
