//! DRAMHiT-like baseline: open addressing with an inlined index and software
//! prefetching over client batches, but **no resizing**, tombstone deletes
//! that cannot reclaim slots, upsert-only writes, and batches whose requests
//! may be **reordered** (Table 1, §2.2, §5.3.3).

use crate::open_addr::{is_unsupported_key, CellArray, InsertCell};
use dlht_core::{
    Batch, BatchPolicy, DlhtError, InsertOutcome, KvBackend, MapFeatures, Pipeline, Request,
    Response,
};

const MAX_PROBES: u64 = 256;

/// DRAMHiT-like batched open-addressing map.
pub struct DramhitLikeMap {
    cells: CellArray,
}

impl DramhitLikeMap {
    /// Create a map with room for about `capacity` keys at ~60% load.
    pub fn with_capacity(capacity: usize) -> Self {
        DramhitLikeMap {
            cells: CellArray::new(capacity * 5 / 3),
        }
    }

    /// Open the native pipelined submission interface — the shape DRAMHiT's
    /// own API has: prefetch the home cell at submit time, keep up to `depth`
    /// requests in flight, and execute each flushed chunk through the
    /// reordering engine ([`BatchPolicy::Unordered`]). Responses still come
    /// back in submission order; execution within a chunk does not.
    pub fn pipeline(&self, depth: usize) -> Pipeline<'_, Self> {
        Pipeline::with_flush_policy(self, depth, BatchPolicy::Unordered)
    }
}

impl KvBackend for DramhitLikeMap {
    fn get(&self, key: u64) -> Option<u64> {
        if is_unsupported_key(key) {
            return None;
        }
        self.cells.get(key, MAX_PROBES, false)
    }

    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        if is_unsupported_key(key) {
            return Err(DlhtError::ReservedKey);
        }
        match self.cells.insert(key, value, MAX_PROBES, false) {
            InsertCell::Inserted => Ok(InsertOutcome::Inserted),
            InsertCell::Exists(v) => Ok(InsertOutcome::AlreadyExists(v)),
            InsertCell::Full => Err(DlhtError::TableFull),
        }
    }

    /// DRAMHiT cannot express a pure Put: this may silently insert (the
    /// upsert-only write of the original design), in which case there is no
    /// previous value to report.
    fn put(&self, key: u64, value: u64) -> Option<u64> {
        if is_unsupported_key(key) {
            return None;
        }
        match self.cells.insert(key, value, MAX_PROBES, false) {
            InsertCell::Inserted => None,
            InsertCell::Exists(prev) => {
                self.cells.update(key, value, MAX_PROBES, false);
                Some(prev)
            }
            InsertCell::Full => None,
        }
    }

    fn delete(&self, key: u64) -> Option<u64> {
        if is_unsupported_key(key) {
            return None;
        }
        self.cells.remove(key, MAX_PROBES, false)
    }

    fn len(&self) -> usize {
        self.cells.live()
    }

    fn name(&self) -> &'static str {
        "DRAMHiT-like"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures {
            collision_handling: "open-addressing",
            lock_free_gets: true,
            non_blocking_puts: false, // only upserts
            non_blocking_inserts: false,
            deletes_free_slots: false,
            resizable: false,
            non_blocking_resize: false,
            overlaps_memory_accesses: true,
            inline_values: true,
        }
    }

    fn supports_batching(&self) -> bool {
        true
    }

    fn prefetch_key(&self, key: u64) {
        dlht_core::prefetch::prefetch_read(self.cells.home_cell_ptr(key));
    }

    /// Batched execution with prefetching, but — faithfully to DRAMHiT — the
    /// requests are **reordered** (grouped by home cell) to maximize overlap.
    /// Results are written back in submission order, but their effects may
    /// interleave differently than submitted, which is what can deadlock a
    /// lock manager built on top (§5.3.3). For the same reason,
    /// [`BatchPolicy::StopOnFailure`] cannot be honored: dependent batches
    /// are not supported by a reordering engine, so every request executes
    /// regardless of policy. [`BatchPolicy::Unordered`] is this engine's
    /// native mode.
    fn execute(&self, batch: &mut Batch, _policy: BatchPolicy) {
        self.execute_reordered(batch, true)
    }

    /// Pipeline flushes arrive with every home cell already prefetched at
    /// submit time — skip the sweep, keep the reordering engine.
    fn execute_prefetched(&self, batch: &mut Batch, _policy: BatchPolicy) {
        self.execute_reordered(batch, false)
    }
}

impl DramhitLikeMap {
    /// The reordering engine behind both batch entry points.
    fn execute_reordered(&self, batch: &mut Batch, prefetch_sweep: bool) {
        let (requests, out) = batch.begin_execution();
        out.resize(requests.len(), Response::Value(None));
        if prefetch_sweep {
            for req in requests {
                dlht_core::prefetch::prefetch_read(self.cells.home_cell_ptr(req.key()));
            }
        }
        // Reorder by home-cell address (asynchronous engine emulation).
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| self.cells.home_cell_ptr(requests[i].key()) as usize);
        for i in order {
            out[i] = match requests[i] {
                Request::Get(k) => Response::Value(self.get(k)),
                Request::Put(k, v) => Response::Updated(self.put(k, v)),
                Request::Insert(k, v) => Response::Inserted(self.insert(k, v)),
                Request::Delete(k) => Response::Deleted(self.delete(k)),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn basic_semantics() {
        conformance::basic_semantics(&DramhitLikeMap::with_capacity(1024));
    }

    #[test]
    fn concurrent_inserts() {
        conformance::concurrent_inserts(&DramhitLikeMap::with_capacity(50_000), 2_000);
    }

    #[test]
    fn put_silently_inserts() {
        let m = DramhitLikeMap::with_capacity(64);
        assert_eq!(
            m.put(5, 50),
            None,
            "upsert-only write must insert missing keys without a previous value"
        );
        assert_eq!(m.get(5), Some(50));
        assert_eq!(m.put(5, 51), Some(50));
        assert_eq!(m.get(5), Some(51));
    }

    #[test]
    fn batch_results_follow_submission_order_even_if_execution_reorders() {
        let m = DramhitLikeMap::with_capacity(256);
        for k in 0..50u64 {
            let _ = m.insert(k, k).unwrap();
        }
        let reqs: Vec<Request> = (0..50u64).rev().map(Request::Get).collect();
        let out = m.execute_batch(&reqs, BatchPolicy::Unordered);
        for (i, r) in out.iter().enumerate() {
            let expected_key = 49 - i as u64;
            assert_eq!(*r, Response::Value(Some(expected_key)));
        }
    }

    #[test]
    fn batch_may_reorder_dependent_requests() {
        // Insert(k) followed by Delete(k') where k' hashes earlier can execute
        // out of order — demonstrate the behavioural difference from DLHT by
        // checking a dependent sequence is NOT guaranteed to succeed.
        let m = DramhitLikeMap::with_capacity(256);
        let reqs = vec![Request::Insert(10, 1), Request::Get(10)];
        let out = m.execute_batch(&reqs, BatchPolicy::RunAll);
        // Whatever the internal order, results land in submission slots.
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], Response::Inserted(_)));
        assert!(matches!(out[1], Response::Value(_)));
    }

    #[test]
    fn native_pipeline_prefetches_and_completes_in_submission_order() {
        let m = DramhitLikeMap::with_capacity(4_096);
        for k in 0..500u64 {
            let _ = m.insert(k, k + 7).unwrap();
        }
        let mut pipe = m.pipeline(16);
        let mut got = Vec::new();
        for k in 0..500u64 {
            if let Some(r) = pipe.submit(Request::Get(k)) {
                got.push(r);
            }
        }
        pipe.drain_into(&mut got);
        assert_eq!(got.len(), 500);
        for (k, r) in got.iter().enumerate() {
            assert_eq!(*r, Response::Value(Some(k as u64 + 7)));
        }
    }
}
