//! CLHT-like baseline: lock-free closed addressing with one cache line per
//! bucket, **no chaining**, and a serial, blocking resize (Table 1, §2.2).
//!
//! Mirrors the properties the paper attributes to the lock-free CLHT variant:
//!
//! * a bucket holds at most 3 key-value pairs; any further collision forces a
//!   resize, which is why CLHT's occupancy before resize is only 1–5%;
//! * Gets/Inserts/Deletes are CAS-based on a per-bucket header word;
//! * the resize is single-threaded and blocks every other operation until all
//!   objects are copied (here: a writer lock held for the whole migration).
//!
//! The original CLHT additionally assumes values are unique and offers no
//! Puts; we keep the no-Put restriction (`update` returns `false`) so the
//! workload runner exercises it the way the paper does.

use dlht_core::{DlhtError, InsertOutcome, KvBackend, MapFeatures};
use dlht_hash::{Hasher64, WyHash};
use dlht_util::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

const SLOTS: usize = 3;

const EMPTY: u64 = 0;
const CLAIMED: u64 = 1;
const VALID: u64 = 2;

#[inline]
fn slot_state(h: u64, slot: usize) -> u64 {
    (h >> (32 + 2 * slot)) & 0b11
}

#[inline]
fn with_slot_state(h: u64, slot: usize, state: u64) -> u64 {
    let shift = 32 + 2 * slot;
    let cleared = h & !(0b11 << shift);
    let version = (h as u32).wrapping_add(1) as u64;
    (cleared & !0xFFFF_FFFF) | ((state) << shift) | version
}

#[inline]
fn version(h: u64) -> u32 {
    h as u32
}

struct Bucket {
    header: AtomicU64,
    keys: [AtomicU64; SLOTS],
    vals: [AtomicU64; SLOTS],
}

impl Bucket {
    fn new() -> Self {
        Bucket {
            header: AtomicU64::new(0),
            keys: std::array::from_fn(|_| AtomicU64::new(0)),
            vals: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

struct Inner {
    buckets: Vec<Bucket>,
}

impl Inner {
    fn new(buckets: usize) -> Self {
        Inner {
            buckets: (0..buckets.max(2)).map(|_| Bucket::new()).collect(),
        }
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> &Bucket {
        let h = WyHash.hash_u64(key);
        &self.buckets[(h % self.buckets.len() as u64) as usize]
    }

    fn get(&self, key: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        loop {
            let h = b.header.load(Ordering::Acquire);
            let mut found = None;
            for s in 0..SLOTS {
                if slot_state(h, s) == VALID && b.keys[s].load(Ordering::Acquire) == key {
                    found = Some(b.vals[s].load(Ordering::Acquire));
                    break;
                }
            }
            let h2 = b.header.load(Ordering::Acquire);
            if version(h2) == version(h) {
                return found;
            }
        }
    }

    /// `Ok(Some(existing))` when the key is already present, `Err(())` when
    /// the bucket is full (CLHT must resize).
    fn insert(&self, key: u64, value: u64) -> Result<Option<u64>, ()> {
        let b = self.bucket_of(key);
        'outer: loop {
            let h = b.header.load(Ordering::Acquire);
            // Duplicate check among published slots. The value read is only
            // valid if the header version is unchanged afterwards (seqlock
            // style, as in `get`) — otherwise the slot may have been reused
            // for a different key between the key and value loads.
            for s in 0..SLOTS {
                if slot_state(h, s) == VALID && b.keys[s].load(Ordering::Acquire) == key {
                    let existing = b.vals[s].load(Ordering::Acquire);
                    let h2 = b.header.load(Ordering::Acquire);
                    if version(h2) == version(h) {
                        return Ok(Some(existing));
                    }
                    continue 'outer;
                }
            }
            let Some(free) = (0..SLOTS).find(|&s| slot_state(h, s) == EMPTY) else {
                return Err(());
            };
            // Claim the slot, fill it, then publish — the same two-phase CAS
            // protocol DLHT inherits from CLHT (§3.2.2).
            let claimed = with_slot_state(h, free, CLAIMED);
            if b.header
                .compare_exchange(h, claimed, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue 'outer;
            }
            b.keys[free].store(key, Ordering::Release);
            b.vals[free].store(value, Ordering::Release);
            loop {
                let h2 = b.header.load(Ordering::Acquire);
                // Someone may have published the same key meanwhile.
                for s in 0..SLOTS {
                    if s != free
                        && slot_state(h2, s) == VALID
                        && b.keys[s].load(Ordering::Acquire) == key
                    {
                        // Release our claim and report the duplicate.
                        let existing = b.vals[s].load(Ordering::Acquire);
                        let released = with_slot_state(h2, free, EMPTY);
                        if b.header
                            .compare_exchange(h2, released, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            return Ok(Some(existing));
                        }
                        continue 'outer;
                    }
                }
                let published = with_slot_state(h2, free, VALID);
                if b.header
                    .compare_exchange(h2, published, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return Ok(None);
                }
            }
        }
    }

    fn remove(&self, key: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        loop {
            let h = b.header.load(Ordering::Acquire);
            let Some(slot) = (0..SLOTS)
                .find(|&s| slot_state(h, s) == VALID && b.keys[s].load(Ordering::Acquire) == key)
            else {
                let h2 = b.header.load(Ordering::Acquire);
                if version(h2) == version(h) {
                    return None;
                }
                continue;
            };
            let value = b.vals[slot].load(Ordering::Acquire);
            let freed = with_slot_state(h, slot, EMPTY);
            if b.header
                .compare_exchange(h, freed, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(value);
            }
        }
    }

    fn for_each(&self, mut f: impl FnMut(u64, u64)) {
        for b in &self.buckets {
            let h = b.header.load(Ordering::Acquire);
            for s in 0..SLOTS {
                if slot_state(h, s) == VALID {
                    f(
                        b.keys[s].load(Ordering::Acquire),
                        b.vals[s].load(Ordering::Acquire),
                    );
                }
            }
        }
    }
}

/// CLHT-like lock-free closed-addressing map with a blocking, serial resize.
pub struct ClhtMap {
    inner: RwLock<Inner>,
    resizes: AtomicU64,
}

impl ClhtMap {
    /// Create a map with roughly `capacity / 3` buckets.
    pub fn with_capacity(capacity: usize) -> Self {
        ClhtMap {
            inner: RwLock::new(Inner::new(capacity.div_ceil(SLOTS))),
            resizes: AtomicU64::new(0),
        }
    }

    /// Number of blocking resizes performed.
    pub fn resizes(&self) -> u64 {
        self.resizes.load(Ordering::Relaxed)
    }

    /// Single-threaded, blocking resize: every other operation waits on the
    /// writer lock until all pairs are copied.
    fn grow(&self) {
        let mut guard = self.inner.write();
        let mut new_size = guard.buckets.len() * 2;
        loop {
            let new = Inner::new(new_size);
            let mut ok = true;
            guard.for_each(|k, v| {
                if ok && new.insert(k, v) == Err(()) {
                    ok = false;
                }
            });
            if ok {
                *guard = new;
                break;
            }
            // A bucket still overflowed (no chaining!): double again.
            new_size *= 2;
        }
        self.resizes.fetch_add(1, Ordering::Relaxed);
    }
}

impl KvBackend for ClhtMap {
    fn get(&self, key: u64) -> Option<u64> {
        self.inner.read().get(key)
    }

    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        if dlht_core::bucket::is_reserved_key(key) {
            return Err(DlhtError::ReservedKey);
        }
        loop {
            match self.inner.read().insert(key, value) {
                Ok(None) => return Ok(InsertOutcome::Inserted),
                Ok(Some(existing)) => return Ok(InsertOutcome::AlreadyExists(existing)),
                Err(()) => {}
            }
            self.grow();
        }
    }

    fn put(&self, _key: u64, _value: u64) -> Option<u64> {
        // The lock-free CLHT variant does not support Puts (Table 1).
        None
    }

    fn delete(&self, key: u64) -> Option<u64> {
        self.inner.read().remove(key)
    }

    fn len(&self) -> usize {
        let mut n = 0;
        self.inner.read().for_each(|_, _| n += 1);
        n
    }

    fn name(&self) -> &'static str {
        "CLHT"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures {
            collision_handling: "closed-addressing",
            lock_free_gets: true,
            non_blocking_puts: false,
            non_blocking_inserts: true,
            deletes_free_slots: true,
            resizable: true,
            non_blocking_resize: false,
            overlaps_memory_accesses: false,
            inline_values: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn basic_semantics() {
        conformance::basic_semantics(&ClhtMap::with_capacity(1024));
    }

    #[test]
    fn concurrent_inserts() {
        conformance::concurrent_inserts(&ClhtMap::with_capacity(50_000), 2_000);
    }

    #[test]
    fn header_state_packing() {
        let h = 0u64;
        let h = with_slot_state(h, 0, VALID);
        let h = with_slot_state(h, 2, CLAIMED);
        assert_eq!(slot_state(h, 0), VALID);
        assert_eq!(slot_state(h, 1), EMPTY);
        assert_eq!(slot_state(h, 2), CLAIMED);
        assert_eq!(version(h), 2);
    }

    #[test]
    fn grows_when_a_bucket_overflows() {
        let m = ClhtMap::with_capacity(8);
        for k in 0..2_000u64 {
            assert!(m.insert(k, k).unwrap().inserted(), "insert {k}");
        }
        assert!(m.resizes() > 0, "CLHT must resize early (low occupancy)");
        assert_eq!(m.len(), 2_000);
        for k in 0..2_000u64 {
            assert_eq!(m.get(k), Some(k));
        }
    }

    #[test]
    fn no_put_support() {
        let m = ClhtMap::with_capacity(64);
        let _ = m.insert(1, 1).unwrap();
        assert_eq!(m.put(1, 2), None);
        assert_eq!(m.get(1), Some(1));
    }

    #[test]
    fn deletes_reclaim_slots() {
        let m = ClhtMap::with_capacity(64);
        // Repeated insert/delete of colliding keys must not trigger resizes.
        for round in 0..1_000u64 {
            assert!(m.insert(round, round).unwrap().inserted());
            assert_eq!(m.delete(round), Some(round));
        }
        assert_eq!(m.resizes(), 0);
        assert_eq!(m.len(), 0);
    }
}
