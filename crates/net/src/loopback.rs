//! In-process loopback transport: the full wire path — encode, frame,
//! decode, batch, execute, encode back — with no sockets, no threads, and no
//! timing dependence, so tests of the protocol are deterministic and
//! offline.
//!
//! [`LoopbackTransport`] implements `Read + Write` over an internal byte
//! pair: client writes buffer up, `flush` runs the same [`Service`] engine a
//! TCP connection uses, and reads drain the produced response bytes. A
//! [`DlhtClient`] over it behaves exactly like one over TCP — including the
//! pipelining-becomes-batching property, since everything written before a
//! flush is processed as one drain.
//!
//! [`LoopbackBackend`] closes the loop for the test suites: it implements
//! [`KvBackend`] by driving any inner backend *through the wire*, so the
//! model-differential oracle validates the protocol path with the same
//! random sequences it replays against the tables directly.

use crate::client::{DlhtClient, NetError};
use crate::service::{BackendEngine, Service, ServiceEngine};
use crate::wire::RemoteStats;
use dlht_core::{
    Batch, BatchPolicy, DlhtError, InsertOutcome, KvBackend, MapFeatures, Request, Response,
    TableStats,
};
use std::io::{Read, Write};
use std::sync::{Arc, Mutex};

/// A deterministic in-process byte transport over a [`Service`] (module docs
/// above).
pub struct LoopbackTransport<E: ServiceEngine> {
    service: Service<E>,
    /// Client → server bytes not yet processed.
    inbound: Vec<u8>,
    /// Server → client bytes not yet read.
    outbound: Vec<u8>,
    opos: usize,
    /// Set after a protocol error: the "server" has closed the connection.
    closed: bool,
}

impl<E: ServiceEngine> LoopbackTransport<E> {
    /// Wrap `engine` in a loopback connection.
    pub fn new(engine: E) -> Self {
        LoopbackTransport {
            service: Service::new(engine),
            inbound: Vec::new(),
            outbound: Vec::new(),
            opos: 0,
            closed: false,
        }
    }

    /// Borrow the server-side service (per-connection stats, engine access).
    pub fn service(&self) -> &Service<E> {
        &self.service
    }

    fn pump(&mut self) {
        if self.closed || self.inbound.is_empty() {
            return;
        }
        if self.opos == self.outbound.len() {
            self.outbound.clear();
            self.opos = 0;
        }
        match self.service.process(&self.inbound, &mut self.outbound) {
            Ok(consumed) => {
                self.inbound.drain(..consumed);
            }
            Err(_) => {
                // The ERR frame is already in `outbound`; everything after
                // the violation is discarded, like a real closed socket.
                self.inbound.clear();
                self.closed = true;
            }
        }
    }
}

impl<E: ServiceEngine> Write for LoopbackTransport<E> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.closed && self.outbound.len() == self.opos {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "loopback connection closed by protocol error",
            ));
        }
        self.inbound.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.pump();
        Ok(())
    }
}

impl<E: ServiceEngine> Read for LoopbackTransport<E> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.opos == self.outbound.len() {
            self.pump();
        }
        let available = &self.outbound[self.opos..];
        if available.is_empty() {
            // EOF: either the server closed, or the client forgot to flush —
            // both must surface as a clean end-of-stream, never a hang.
            return Ok(0);
        }
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.opos += n;
        Ok(n)
    }
}

/// A [`DlhtClient`] over an in-process loopback connection to `engine`.
pub fn loopback_client<E: ServiceEngine>(engine: E) -> DlhtClient<LoopbackTransport<E>> {
    DlhtClient::new(LoopbackTransport::new(engine))
}

type LoopbackClient = DlhtClient<LoopbackTransport<BackendEngine<Arc<dyn KvBackend>>>>;

/// Any [`KvBackend`] served **through the wire protocol** in-process: every
/// operation is encoded into frames, decoded by the server-side [`Service`],
/// executed on the inner backend, and the response decoded back.
///
/// `name()` and `features()` pass through to the inner backend so
/// capability-probing test harnesses (the model-differential oracle) treat
/// the wrapped table exactly like the bare one. Batch execution defaults to
/// one explicit `BATCH` frame; [`LoopbackBackend::with_pipelined_singles`]
/// instead sends `RunAll` batches as pipelined plain frames, exercising the
/// server-side drain-into-batch path.
pub struct LoopbackBackend {
    name: &'static str,
    features: MapFeatures,
    client: Mutex<LoopbackClient>,
    pipelined_singles: bool,
}

impl LoopbackBackend {
    /// Serve `backend` through a loopback wire connection, with batches sent
    /// as explicit `BATCH` frames.
    pub fn new(backend: Arc<dyn KvBackend>) -> Self {
        Self::build(backend, false)
    }

    /// Like [`LoopbackBackend::new`], but `RunAll` batches travel as
    /// pipelined plain frames (the wire-pipelining path); policies that need
    /// the batch envelope (`StopOnFailure`, `Unordered`) still use `BATCH`
    /// frames.
    pub fn with_pipelined_singles(backend: Arc<dyn KvBackend>) -> Self {
        Self::build(backend, true)
    }

    fn build(backend: Arc<dyn KvBackend>, pipelined_singles: bool) -> Self {
        LoopbackBackend {
            name: backend.name(),
            features: backend.features(),
            client: Mutex::new(loopback_client(BackendEngine(backend))),
            pipelined_singles,
        }
    }

    fn with_client<R>(&self, f: impl FnOnce(&mut LoopbackClient) -> Result<R, NetError>) -> R {
        let mut client = self.client.lock().expect("loopback client lock");
        f(&mut client).expect("loopback wire operation failed")
    }

    /// Typed stats round trip (the same `STATS` command a remote client
    /// issues).
    pub fn remote_stats(&self) -> RemoteStats {
        self.with_client(|c| c.stats())
    }
}

impl KvBackend for LoopbackBackend {
    fn get(&self, key: u64) -> Option<u64> {
        self.with_client(|c| c.get(key))
    }

    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        let mut client = self.client.lock().expect("loopback client lock");
        match client.insert(key, value) {
            Ok(outcome) => Ok(outcome),
            Err(NetError::Table(e)) => Err(e),
            Err(e) => panic!("loopback wire insert failed: {e}"),
        }
    }

    fn put(&self, key: u64, value: u64) -> Option<u64> {
        self.with_client(|c| c.put(key, value))
    }

    fn delete(&self, key: u64) -> Option<u64> {
        self.with_client(|c| c.delete(key))
    }

    fn len(&self) -> usize {
        self.with_client(|c| c.server_len()) as usize
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn features(&self) -> MapFeatures {
        self.features
    }

    fn stats(&self) -> TableStats {
        self.remote_stats().table
    }

    fn retired_indexes(&self) -> usize {
        self.remote_stats().retired as usize
    }

    fn supports_batching(&self) -> bool {
        true
    }

    fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        if self.pipelined_singles && policy == BatchPolicy::RunAll {
            let (requests, responses) = batch.begin_execution();
            self.with_client(|c| c.pipelined_into(requests, responses));
        } else {
            self.with_client(|c| c.execute(batch, policy));
        }
    }

    fn execute_batch(&self, requests: &[Request], policy: BatchPolicy) -> Vec<Response> {
        let mut batch = Batch::from(requests);
        self.execute(&mut batch, policy);
        batch.into_responses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlht_core::ShardedTable;

    fn loopback(pipelined: bool) -> LoopbackBackend {
        let table: Arc<dyn KvBackend> = Arc::new(ShardedTable::with_capacity(2, 1024));
        if pipelined {
            LoopbackBackend::with_pipelined_singles(table)
        } else {
            LoopbackBackend::new(table)
        }
    }

    #[test]
    fn singles_roundtrip_through_the_wire() {
        let lb = loopback(false);
        assert!(lb.insert(1, 10).unwrap().inserted());
        assert_eq!(lb.get(1), Some(10));
        assert_eq!(lb.put(1, 11), Some(10));
        assert_eq!(lb.delete(1), Some(11));
        assert_eq!(lb.get(1), None);
        assert_eq!(lb.insert(u64::MAX, 1), Err(DlhtError::ReservedKey));
        assert_eq!(lb.len(), 0);
    }

    #[test]
    fn both_batch_transports_agree_with_local_execution() {
        for pipelined in [false, true] {
            let lb = loopback(pipelined);
            let reqs = [
                Request::Insert(1, 10),
                Request::Get(1),
                Request::Put(1, 11),
                Request::Get(1),
                Request::Delete(1),
                Request::Get(1),
            ];
            let out = lb.execute_batch(&reqs, BatchPolicy::RunAll);
            assert_eq!(out[1], Response::Value(Some(10)), "pipelined={pipelined}");
            assert_eq!(out[3], Response::Value(Some(11)), "pipelined={pipelined}");
            assert_eq!(out[5], Response::Value(None), "pipelined={pipelined}");
        }
    }

    #[test]
    fn stop_on_failure_skips_over_the_wire() {
        for pipelined in [false, true] {
            let lb = loopback(pipelined);
            let out = lb.execute_batch(
                &[
                    Request::Insert(1, 1),
                    Request::Get(999),
                    Request::Insert(2, 2),
                ],
                BatchPolicy::StopOnFailure,
            );
            assert_eq!(out[2], Response::Skipped);
            assert_eq!(lb.get(2), None);
        }
    }

    #[test]
    fn typed_stats_cross_the_wire() {
        let lb = loopback(false);
        for k in 0..50u64 {
            let _ = lb.insert(k, k).unwrap();
        }
        let stats = lb.remote_stats();
        assert_eq!(stats.table.occupied_slots, 50);
        assert!(stats.table.bins > 0);
        assert_eq!(stats.retired, 0);
        assert_eq!(KvBackend::stats(&lb).occupied_slots, 50);
        assert_eq!(lb.len(), 50);
    }

    #[test]
    fn reusable_batches_stay_consistent_across_reuse() {
        let lb = loopback(true);
        let mut batch = Batch::with_capacity(3);
        for round in 0..10u64 {
            batch.clear();
            batch.push_insert(round, round * 7);
            batch.push_get(round);
            batch.push_delete(round);
            lb.execute(&mut batch, BatchPolicy::RunAll);
            assert_eq!(batch.responses()[1], Response::Value(Some(round * 7)));
        }
        assert_eq!(lb.len(), 0);
    }
}
