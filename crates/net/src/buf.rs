//! [`ByteRing`]: the per-connection byte buffer of the event-driven server.
//!
//! Both sides of a connection need a "bytes in, bytes out, keep the
//! unconsumed tail" buffer: the read side carries the incomplete frame a
//! partial socket read left behind, the write side carries response bytes a
//! full TCP window would not accept. The obvious `Vec` +
//! `drain(..consumed)` implementation has two production bugs this type
//! exists to eliminate:
//!
//! 1. **Quadratic drain** — `Vec::drain(..n)` memmoves the whole tail on
//!    every call, so a connection that always leaves one partial frame
//!    behind pays O(buffered²) over its lifetime. `ByteRing` instead tracks
//!    a consumed-prefix offset and only compacts (one `copy_within`) when
//!    the dead prefix has grown to at least half the buffer — every byte is
//!    moved O(1) times, amortized.
//! 2. **Capacity pinned forever** — one 1 MiB frame used to leave 1 MiB of
//!    `Vec` capacity allocated per connection for its lifetime. `ByteRing`
//!    shrinks back to [`ByteRing::SHRINK_CAPACITY`] whenever it drains
//!    empty while oversized, so per-connection memory stays flat no matter
//!    what traffic came through.

use std::io::Read;

/// A sliding byte buffer: append at the tail, consume from the head,
/// contiguous view of the unconsumed bytes (module docs above).
#[derive(Debug, Default)]
pub struct ByteRing {
    /// Backing storage; `buf[start..]` is the live region.
    buf: Vec<u8>,
    /// Consumed-prefix length (dead bytes awaiting compaction).
    start: usize,
}

impl ByteRing {
    /// Capacity retained across [`ByteRing::consume`]-to-empty: buffers that
    /// ballooned past this (e.g. a single `MAX_PAYLOAD` frame) are shrunk
    /// back once drained, keeping idle-connection memory flat.
    pub const SHRINK_CAPACITY: usize = 64 * 1024;

    /// Dead prefixes below this are never worth a `copy_within`.
    const COMPACT_MIN: usize = 4 * 1024;

    /// An empty ring (no allocation until first append).
    pub fn new() -> ByteRing {
        ByteRing::default()
    }

    // HOT: the event loop reads this once per readiness event.
    /// The unconsumed bytes, contiguous.
    pub fn data(&self) -> &[u8] {
        self.buf.get(self.start..).unwrap_or(&[])
    }

    /// Number of unconsumed bytes.
    pub fn len(&self) -> usize {
        self.buf.len().saturating_sub(self.start)
    }

    /// `true` when no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of backing capacity currently allocated (the number the
    /// flat-memory accounting sums per connection).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    // HOT: runs after every processed read and every socket write.
    /// Mark the first `n` unconsumed bytes consumed. Compacts when the dead
    /// prefix reaches half the buffer (amortized O(1) per byte) and shrinks
    /// oversized capacity once the buffer drains empty.
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len(), "consume past the live region");
        self.start = (self.start + n).min(self.buf.len());
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
            if self.buf.capacity() > Self::SHRINK_CAPACITY {
                self.buf.shrink_to(Self::SHRINK_CAPACITY);
            }
        } else if self.start >= Self::COMPACT_MIN && self.start * 2 >= self.buf.len() {
            self.compact();
        }
    }

    /// Drop everything, including oversized capacity.
    pub fn clear(&mut self) {
        self.start = 0;
        self.buf.clear();
        if self.buf.capacity() > Self::SHRINK_CAPACITY {
            self.buf.shrink_to(Self::SHRINK_CAPACITY);
        }
    }

    /// Append `bytes` at the tail.
    pub fn append(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append through a closure that may only push bytes onto the given
    /// `Vec` (the storage tail). This lets producers that already speak
    /// "append to a `Vec<u8>`" — the wire encoder, [`crate::Service`] —
    /// write straight into the ring with no intermediate copy.
    pub fn append_with<R>(&mut self, f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
        let tail_before = self.buf.len();
        let r = f(&mut self.buf);
        debug_assert!(
            self.buf.len() >= tail_before,
            "append_with must only append"
        );
        r
    }

    /// Read up to `max` bytes from `r` into the tail, returning what
    /// `Read::read` returned. The dead prefix is compacted first when large
    /// enough that growing the tail would otherwise duplicate it.
    pub fn read_from<R: Read + ?Sized>(&mut self, r: &mut R, max: usize) -> std::io::Result<usize> {
        if self.start >= Self::COMPACT_MIN {
            self.compact();
        }
        let tail = self.buf.len();
        self.buf.resize(tail + max, 0);
        let result = r.read(&mut self.buf[tail..]);
        match &result {
            Ok(n) => self.buf.truncate(tail + n),
            Err(_) => self.buf.truncate(tail),
        }
        result
    }

    /// Slide the live region to the front of the storage.
    fn compact(&mut self) {
        let live = self.buf.len() - self.start;
        self.buf.copy_within(self.start.., 0);
        self.buf.truncate(live);
        self.start = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_consume_roundtrip() {
        let mut ring = ByteRing::new();
        assert!(ring.is_empty());
        ring.append(b"hello world");
        assert_eq!(ring.data(), b"hello world");
        ring.consume(6);
        assert_eq!(ring.data(), b"world");
        ring.append(b"!");
        assert_eq!(ring.data(), b"world!");
        ring.consume(6);
        assert!(ring.is_empty());
        assert_eq!(ring.data(), b"");
    }

    #[test]
    fn consume_is_amortized_not_quadratic() {
        // The regression shape: every pass appends a chunk and consumes all
        // but a small tail. With drain() this memmoves the whole buffer per
        // pass; with the offset scheme the live region stays small and the
        // buffer never grows past chunk + tail (+ slack).
        let mut ring = ByteRing::new();
        let chunk = vec![0xABu8; 16 * 1024];
        for _ in 0..200 {
            ring.append(&chunk);
            let keep = 7;
            ring.consume(ring.len() - keep);
            assert_eq!(ring.len(), keep);
            assert!(
                ring.capacity() <= 2 * (chunk.len() + ByteRing::COMPACT_MIN),
                "dead prefix must be compacted away, capacity {}",
                ring.capacity()
            );
        }
    }

    #[test]
    fn oversized_capacity_is_released_when_drained() {
        let mut ring = ByteRing::new();
        let big = vec![1u8; 1 << 20]; // one MAX_PAYLOAD-sized frame
        ring.append(&big);
        assert!(ring.capacity() >= big.len());
        ring.consume(big.len());
        assert!(ring.is_empty());
        assert!(
            ring.capacity() <= ByteRing::SHRINK_CAPACITY,
            "drained ring must shrink, capacity {}",
            ring.capacity()
        );
        // And it keeps working after the shrink.
        ring.append(b"abc");
        assert_eq!(ring.data(), b"abc");
    }

    #[test]
    fn partial_consume_keeps_tail_intact_across_compaction() {
        let mut ring = ByteRing::new();
        // Force repeated compactions with a verifiable pattern.
        let mut next_write = 0u64;
        let mut next_read = 0u64;
        for _ in 0..50 {
            for _ in 0..512 {
                ring.append(&next_write.to_le_bytes());
                next_write += 1;
            }
            while ring.len() >= 8 + 3 {
                let mut b = [0u8; 8];
                b.copy_from_slice(&ring.data()[..8]);
                assert_eq!(u64::from_le_bytes(b), next_read);
                next_read += 1;
                ring.consume(8);
            }
        }
    }

    #[test]
    fn read_from_appends_at_tail() {
        let mut ring = ByteRing::new();
        ring.append(b"head|");
        let mut src: &[u8] = b"tail";
        let n = ring.read_from(&mut src, 16).unwrap();
        assert_eq!(n, 4);
        assert_eq!(ring.data(), b"head|tail");
        // Zero-byte read (EOF) leaves the ring unchanged.
        let mut empty: &[u8] = b"";
        assert_eq!(ring.read_from(&mut empty, 16).unwrap(), 0);
        assert_eq!(ring.data(), b"head|tail");
    }

    #[test]
    fn append_with_writes_into_the_tail() {
        let mut ring = ByteRing::new();
        ring.append(b"x");
        ring.consume(1);
        let r = ring.append_with(|v| {
            v.extend_from_slice(b"frame");
            42usize
        });
        assert_eq!(r, 42);
        assert_eq!(ring.data(), b"frame");
    }
}
