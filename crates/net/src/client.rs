//! The pipelining key-value client.
//!
//! [`DlhtClient`] is generic over any `Read + Write` transport: a
//! [`std::net::TcpStream`] for real serving, or the deterministic in-process
//! [`crate::loopback::LoopbackTransport`] for offline tests. Its throughput
//! lever is **pipelining**: [`DlhtClient::pipelined_into`] encodes a window
//! of requests, writes them in one flush, and then reads the window's
//! responses — one round trip per window instead of one per request, which
//! the server turns into one prefetched batch execution (see
//! [`crate::service`]).

use crate::wire::{self, RemoteStats, WireError};
use dlht_core::{Batch, BatchPolicy, DlhtError, InsertOutcome, Request, Response};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side errors: transport failures, protocol violations, server-side
/// protocol rejections, and table errors surfaced by single-request
/// conveniences.
#[derive(Debug)]
pub enum NetError {
    /// Transport error.
    Io(std::io::Error),
    /// The peer's bytes violated the wire protocol.
    Wire(WireError),
    /// The server answered with an `ERR` frame (and closed the connection).
    Server {
        /// [`WireError::code`] as reported by the server.
        code: u8,
        /// Human-readable message from the server.
        message: String,
    },
    /// The server answered with a frame of the wrong type.
    UnexpectedFrame(u8),
    /// The connection closed mid-response.
    Closed,
    /// A single-request convenience (e.g. [`DlhtClient::insert`]) carried a
    /// table error back from the server.
    Table(DlhtError),
    /// The response decoded but its variant does not match the request that
    /// was sent (desynchronized stream).
    Mismatched(Response),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Wire(e) => write!(f, "wire protocol error: {e}"),
            NetError::Server { code, message } => {
                write!(f, "server rejected the stream (code {code}): {message}")
            }
            NetError::UnexpectedFrame(op) => write!(f, "unexpected response frame {op:#04x}"),
            NetError::Closed => write!(f, "connection closed mid-response"),
            NetError::Table(e) => write!(f, "table error: {e}"),
            NetError::Mismatched(r) => {
                write!(f, "response {r:?} does not match the request sent")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// Most requests one `BATCH` frame can carry without its payload (5-byte
/// batch header + at most 17 bytes per item) exceeding
/// [`wire::MAX_PAYLOAD`]. [`DlhtClient::execute`] transparently splits
/// larger batches into frames of this size.
const MAX_BATCH_ITEMS: usize = (wire::MAX_PAYLOAD - 5) / 17;

/// Sub-window size for [`DlhtClient::pipelined_into`]: writing an unbounded
/// window before reading any response can deadlock once the window
/// outgrows the combined socket buffers (both peers blocked in `write`), so
/// large windows are processed in bounded chunks — at most ~17 KiB of
/// frames in flight before the client drains that chunk's responses.
const PIPELINE_CHUNK: usize = 1024;

/// A pipelining client over any byte-stream transport (module docs above).
pub struct DlhtClient<S: Read + Write> {
    stream: S,
    /// Encoded-but-unflushed request frames.
    wbuf: Vec<u8>,
    /// Received-but-undecoded response bytes (compacted window).
    rbuf: Vec<u8>,
    rpos: usize,
}

impl DlhtClient<TcpStream> {
    /// Connect to a `dlht-net` server over TCP (with `TCP_NODELAY`, so small
    /// unpipelined requests are not delayed by Nagle's algorithm).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(DlhtClient::new(stream))
    }
}

impl<S: Read + Write> DlhtClient<S> {
    /// Wrap an established transport.
    pub fn new(stream: S) -> Self {
        DlhtClient {
            stream,
            wbuf: Vec::with_capacity(4096),
            rbuf: Vec::with_capacity(4096),
            rpos: 0,
        }
    }

    /// Borrow the transport (e.g. to set socket options).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Mutably borrow the transport (tests use this to inject raw bytes
    /// below the client API).
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Consume the client, returning the transport.
    pub fn into_inner(self) -> S {
        self.stream
    }

    fn flush_writes(&mut self) -> Result<(), NetError> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        self.stream.flush()?;
        Ok(())
    }

    /// Read one complete response frame, returning `(opcode, payload
    /// range into rbuf)`. `ERR` frames become [`NetError::Server`].
    fn read_frame(&mut self) -> Result<(u8, std::ops::Range<usize>), NetError> {
        loop {
            match wire::decode_frame(&self.rbuf[self.rpos..])? {
                Some((frame, used)) => {
                    let opcode = frame.opcode;
                    let start = self.rpos + wire::HEADER_LEN;
                    let end = self.rpos + used;
                    self.rpos = end;
                    if opcode == wire::resp::ERR {
                        let payload = &self.rbuf[start..end];
                        let code = payload.first().copied().unwrap_or(0);
                        let message =
                            String::from_utf8_lossy(payload.get(1..).unwrap_or(&[])).into_owned();
                        return Err(NetError::Server { code, message });
                    }
                    return Ok((opcode, start..end));
                }
                None => {
                    // Compact the consumed prefix, then read more bytes.
                    if self.rpos > 0 {
                        self.rbuf.drain(..self.rpos);
                        self.rpos = 0;
                    }
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(NetError::Closed);
                    }
                    self.rbuf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }

    fn expect_single(&mut self) -> Result<Response, NetError> {
        let (opcode, range) = self.read_frame()?;
        if opcode != wire::resp::RESP {
            return Err(NetError::UnexpectedFrame(opcode));
        }
        Ok(wire::decode_response(&self.rbuf[range])?)
    }

    /// Issue one request and wait for its response (one round trip).
    pub fn request(&mut self, req: Request) -> Result<Response, NetError> {
        wire::encode_request(&mut self.wbuf, req);
        self.flush_writes()?;
        self.expect_single()
    }

    /// Look up `key` on the server.
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, NetError> {
        match self.request(Request::Get(key))? {
            Response::Value(v) => Ok(v),
            other => Err(unexpected(other)),
        }
    }

    /// Insert `key -> value`; table errors (reserved key, full table) come
    /// back as [`NetError::Table`].
    pub fn insert(&mut self, key: u64, value: u64) -> Result<InsertOutcome, NetError> {
        match self.request(Request::Insert(key, value))? {
            Response::Inserted(Ok(outcome)) => Ok(outcome),
            Response::Inserted(Err(e)) => Err(NetError::Table(e)),
            other => Err(unexpected(other)),
        }
    }

    /// Update an existing key; returns the previous value.
    pub fn put(&mut self, key: u64, value: u64) -> Result<Option<u64>, NetError> {
        match self.request(Request::Put(key, value))? {
            Response::Updated(v) => Ok(v),
            other => Err(unexpected(other)),
        }
    }

    /// Delete `key`; returns the removed value.
    pub fn delete(&mut self, key: u64) -> Result<Option<u64>, NetError> {
        match self.request(Request::Delete(key))? {
            Response::Deleted(v) => Ok(v),
            other => Err(unexpected(other)),
        }
    }

    /// **Pipelined** submission: encode every request, write the window in
    /// one flush, then collect one response per request (submission order)
    /// into `out`. One network round trip per window — and one prefetched
    /// batch execution on the server.
    pub fn pipelined_into(
        &mut self,
        reqs: &[Request],
        out: &mut Vec<Response>,
    ) -> Result<(), NetError> {
        // Windows beyond PIPELINE_CHUNK are split so neither peer can wedge
        // with both socket buffers full of unread bytes; each chunk is still
        // one flush = one server-side batch execution.
        for chunk in reqs.chunks(PIPELINE_CHUNK) {
            for req in chunk {
                wire::encode_request(&mut self.wbuf, *req);
            }
            self.flush_writes()?;
            out.reserve(chunk.len());
            for _ in 0..chunk.len() {
                out.push(self.expect_single()?);
            }
        }
        Ok(())
    }

    /// [`DlhtClient::pipelined_into`] allocating a fresh response vector.
    pub fn pipelined(&mut self, reqs: &[Request]) -> Result<Vec<Response>, NetError> {
        let mut out = Vec::with_capacity(reqs.len());
        self.pipelined_into(reqs, &mut out)?;
        Ok(out)
    }

    /// Execute `batch` remotely under an explicit [`BatchPolicy`] (one
    /// `BATCH` frame, one `RESP_BATCH` frame back), filling the batch's own
    /// response storage exactly like a local `KvBackend::execute`.
    ///
    /// Batches larger than one frame can carry ([`wire::MAX_PAYLOAD`], about
    /// 61k requests) are split transparently; under
    /// [`BatchPolicy::StopOnFailure`] a failure in one frame marks every
    /// later frame's slots [`Response::Skipped`] without sending them, so
    /// the policy contract holds across the split.
    pub fn execute(&mut self, batch: &mut Batch, policy: BatchPolicy) -> Result<(), NetError> {
        let (requests, responses) = batch.begin_execution();
        let mut stopped = false;
        for chunk in requests.chunks(MAX_BATCH_ITEMS) {
            if stopped {
                responses.resize(responses.len() + chunk.len(), Response::Skipped);
                continue;
            }
            let before = responses.len();
            self.execute_frame(chunk, policy, responses)?;
            if policy.stops_on_failure() && responses[before..].iter().any(|r| !r.succeeded()) {
                stopped = true;
            }
        }
        Ok(())
    }

    /// One `BATCH` frame round trip for `chunk`, appending its responses.
    fn execute_frame(
        &mut self,
        chunk: &[Request],
        policy: BatchPolicy,
        responses: &mut Vec<Response>,
    ) -> Result<(), NetError> {
        wire::encode_batch(&mut self.wbuf, chunk, policy);
        self.flush_writes()?;
        let (opcode, range) = self.read_frame()?;
        if opcode != wire::resp::RESP_BATCH {
            return Err(NetError::UnexpectedFrame(opcode));
        }
        // `read_frame` borrowed self mutably; decode from the settled buffer.
        let payload = &self.rbuf[range];
        let count = wire::decode_batch_responses(payload, responses)?;
        if count as usize != chunk.len() {
            return Err(NetError::Wire(WireError::BadBatch));
        }
        Ok(())
    }

    /// Execute a one-shot request slice remotely (convenience over
    /// [`DlhtClient::execute`]).
    pub fn execute_requests(
        &mut self,
        reqs: &[Request],
        policy: BatchPolicy,
    ) -> Result<Vec<Response>, NetError> {
        let mut batch = Batch::from(reqs);
        self.execute(&mut batch, policy)?;
        Ok(batch.into_responses())
    }

    /// Fetch the server's typed statistics snapshot (`KvBackend::stats()` +
    /// `retired_indexes()` — no string parsing).
    pub fn stats(&mut self) -> Result<RemoteStats, NetError> {
        wire::encode_empty(&mut self.wbuf, wire::op::STATS);
        self.flush_writes()?;
        let (opcode, range) = self.read_frame()?;
        if opcode != wire::resp::RESP_STATS {
            return Err(NetError::UnexpectedFrame(opcode));
        }
        Ok(wire::decode_stats(&self.rbuf[range])?)
    }

    /// Number of live keys on the server.
    pub fn server_len(&mut self) -> Result<u64, NetError> {
        wire::encode_empty(&mut self.wbuf, wire::op::LEN);
        self.flush_writes()?;
        let (opcode, range) = self.read_frame()?;
        if opcode != wire::resp::RESP_LEN {
            return Err(NetError::UnexpectedFrame(opcode));
        }
        Ok(wire::decode_len(&self.rbuf[range])?)
    }

    /// Liveness probe: sends a payload, expects it echoed.
    pub fn ping(&mut self) -> Result<(), NetError> {
        let payload = *b"dlht";
        wire::put_header(&mut self.wbuf, wire::op::PING, payload.len());
        self.wbuf.extend_from_slice(&payload);
        self.flush_writes()?;
        let (opcode, range) = self.read_frame()?;
        if opcode != wire::resp::PONG {
            return Err(NetError::UnexpectedFrame(opcode));
        }
        if self.rbuf[range] != payload {
            return Err(NetError::Wire(WireError::BadPayload {
                opcode: wire::resp::PONG,
                len: 0,
            }));
        }
        Ok(())
    }
}

fn unexpected(resp: Response) -> NetError {
    NetError::Mismatched(resp)
}
