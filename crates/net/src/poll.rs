//! A small dependency-free readiness poller for the event-driven server.
//!
//! On Unix this is a thin wrapper over the C library's `poll(2)` —
//! level-triggered, O(sources) per call, no allocation beyond a reused
//! `pollfd` scratch vector, and no external crates (the symbol comes from
//! the libc every Rust binary already links). Elsewhere it degrades to a
//! short-sleep sweep that reports every source ready; because all server
//! sockets are non-blocking, "falsely ready" costs one `EWOULDBLOCK` read,
//! never a stall — the loop stays correct, just less efficient.
//!
//! [`Waker`] gives other threads a way to interrupt a blocked
//! [`Poller::poll`]: a connected loopback TCP pair (the portable equivalent
//! of the classic self-pipe trick), whose read half the event loop
//! registers like any other source.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// What a source wants to be woken for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Interest {
    /// Wake when a read would make progress (data, EOF, or error).
    pub readable: bool,
    /// Wake when a write would make progress.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// No interest: the source is registered but never woken (used while a
    /// connection is backpressured with nothing to write).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness event out of [`Poller::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Index of the source in the slice passed to [`Poller::poll`].
    pub token: usize,
    /// A read would make progress.
    pub readable: bool,
    /// A write would make progress.
    pub writable: bool,
}

/// An OS handle a [`Poller`] can watch. Obtained from any socket via
/// [`Source::from_stream`] / [`Source::from_listener`].
#[derive(Debug, Clone, Copy)]
pub struct Source {
    #[cfg(unix)]
    fd: std::os::unix::io::RawFd,
    #[cfg(not(unix))]
    _opaque: (),
}

impl Source {
    /// Watch a TCP stream.
    pub fn from_stream(stream: &TcpStream) -> Source {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            Source {
                fd: stream.as_raw_fd(),
            }
        }
        #[cfg(not(unix))]
        {
            let _ = stream;
            Source { _opaque: () }
        }
    }

    /// Watch a TCP listener (readable = a connection is ready to accept).
    pub fn from_listener(listener: &TcpListener) -> Source {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            Source {
                fd: listener.as_raw_fd(),
            }
        }
        #[cfg(not(unix))]
        {
            let _ = listener;
            Source { _opaque: () }
        }
    }
}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_short};

    /// `nfds_t`: `unsigned int` on the BSD family, `unsigned long` on Linux.
    #[cfg(any(
        target_os = "macos",
        target_os = "ios",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd"
    ))]
    pub type NFds = std::os::raw::c_uint;
    #[cfg(not(any(
        target_os = "macos",
        target_os = "ios",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd"
    )))]
    pub type NFds = std::os::raw::c_ulong;

    /// `struct pollfd` from `<poll.h>` (identical layout across Unixes).
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    extern "C" {
        /// `int poll(struct pollfd *fds, nfds_t nfds, int timeout)` — POSIX.
        pub fn poll(fds: *mut PollFd, nfds: NFds, timeout_ms: c_int) -> c_int;
    }
}

/// The readiness poller (module docs above). Holds only reusable scratch
/// storage; all registration state is the slice passed to each
/// [`Poller::poll`] call, which keeps the event loop's single ownership of
/// its connection table trivial.
#[derive(Debug, Default)]
pub struct Poller {
    #[cfg(unix)]
    fds: Vec<sys::PollFd>,
}

impl Poller {
    /// A new poller.
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Wait until at least one source is ready or `timeout` elapses,
    /// appending one [`Event`] per ready source to `events` (cleared first).
    /// `Event::token` is the source's index in `sources`. Sources with
    /// [`Interest::NONE`] never produce events but are still watched for
    /// hangup once they have read interest again.
    pub fn poll(
        &mut self,
        sources: &[(Source, Interest)],
        timeout: Duration,
        events: &mut Vec<Event>,
    ) -> std::io::Result<()> {
        events.clear();
        #[cfg(unix)]
        {
            self.fds.clear();
            for (source, interest) in sources {
                let mut ev: std::os::raw::c_short = 0;
                if interest.readable {
                    ev |= sys::POLLIN;
                }
                if interest.writable {
                    ev |= sys::POLLOUT;
                }
                self.fds.push(sys::PollFd {
                    fd: source.fd,
                    events: ev,
                    revents: 0,
                });
            }
            let ms: std::os::raw::c_int = timeout
                .as_millis()
                .min(std::os::raw::c_int::MAX as u128)
                .max(if timeout.is_zero() { 0 } else { 1 })
                as std::os::raw::c_int;
            // SAFETY: `fds` is a live, correctly-sized `pollfd` array for the
            // duration of the call; `poll(2)` only writes the `revents` field
            // of each element and reads nothing beyond `len` entries.
            let rc = unsafe { sys::poll(self.fds.as_mut_ptr(), self.fds.len() as sys::NFds, ms) };
            if rc < 0 {
                let err = std::io::Error::last_os_error();
                if err.kind() == std::io::ErrorKind::Interrupted {
                    return Ok(()); // spurious wakeup: the caller just re-polls
                }
                return Err(err);
            }
            for (token, fd) in self.fds.iter().enumerate() {
                if fd.revents == 0 {
                    continue;
                }
                // Error/hangup surface as readable: the next read observes
                // the actual condition (EOF or an io error) and the
                // connection is torn down through the normal path. POLLNVAL
                // (stale fd) is reported the same way.
                let broken = fd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
                let ev = Event {
                    token,
                    readable: fd.revents & sys::POLLIN != 0 || broken,
                    writable: fd.revents & sys::POLLOUT != 0 || broken,
                };
                if ev.readable || ev.writable {
                    events.push(ev);
                }
            }
            Ok(())
        }
        #[cfg(not(unix))]
        {
            // Degraded portable mode: a bounded nap, then report every
            // interested source ready. Non-blocking sockets turn a false
            // positive into one EWOULDBLOCK syscall, so the loop stays
            // correct (see module docs).
            std::thread::sleep(timeout.min(Duration::from_millis(1)));
            for (token, (_, interest)) in sources.iter().enumerate() {
                if interest.readable || interest.writable {
                    events.push(Event {
                        token,
                        readable: interest.readable,
                        writable: interest.writable,
                    });
                }
            }
            Ok(())
        }
    }
}

/// The wake half of a loopback socket pair: any thread holding a `Waker`
/// can interrupt the owning event loop's [`Poller::poll`].
#[derive(Debug)]
pub struct Waker {
    tx: TcpStream,
}

impl Waker {
    // HOT: called by the acceptor on every connection hand-off.
    /// Wake the paired [`WakeReceiver`]'s poll. Best-effort and idempotent:
    /// if the pipe already holds an unread wake byte (`EWOULDBLOCK`), the
    /// loop is guaranteed to wake anyway, and a torn-down receiver means the
    /// loop is already gone.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// The receive half: registered in the event loop's source set; drained
/// whenever it polls readable.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: TcpStream,
}

impl WakeReceiver {
    /// The pollable handle for the source set.
    pub fn source(&self) -> Source {
        Source::from_stream(&self.rx)
    }

    /// Swallow all pending wake bytes (level-triggered poll would otherwise
    /// report the pipe readable forever).
    pub fn drain(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.rx.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Build a connected waker pair over the loopback interface (the portable
/// self-pipe). Both halves are non-blocking.
pub fn waker_pair() -> std::io::Result<(Waker, WakeReceiver)> {
    let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn timeout_expires_with_no_sources() {
        let mut poller = Poller::new();
        let mut events = Vec::new();
        let t = Instant::now();
        poller
            .poll(&[], Duration::from_millis(30), &mut events)
            .unwrap();
        assert!(events.is_empty());
        assert!(t.elapsed() >= Duration::from_millis(20));
        assert!(t.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn readable_socket_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let mut poller = Poller::new();
        let mut events = Vec::new();
        // Nothing to read yet: interest READ produces no event before data.
        #[cfg(unix)]
        {
            poller
                .poll(
                    &[(Source::from_stream(&rx), Interest::READ)],
                    Duration::from_millis(10),
                    &mut events,
                )
                .unwrap();
            assert!(events.is_empty(), "no data yet");
        }
        tx.write_all(b"ping").unwrap();
        tx.flush().unwrap();
        // Now the source must become readable within the timeout.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .poll(
                    &[(Source::from_stream(&rx), Interest::READ)],
                    Duration::from_millis(50),
                    &mut events,
                )
                .unwrap();
            if events.iter().any(|e| e.token == 0 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "readable event never arrived");
        }
    }

    #[test]
    fn waker_interrupts_a_sleeping_poll() {
        let (waker, mut rx) = waker_pair().unwrap();
        let mut poller = Poller::new();
        let mut events = Vec::new();
        let woken = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
            waker.wake(); // idempotent
            waker // keep the tx side alive for the quiet-check below
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .poll(
                    &[(rx.source(), Interest::READ)],
                    Duration::from_millis(100),
                    &mut events,
                )
                .unwrap();
            if events.iter().any(|e| e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "wake never observed");
        }
        let _waker = woken.join().unwrap();
        // After draining, the pipe is quiet again on Unix (level-triggered).
        // Drain in a loop: the second wake byte may still be in flight.
        #[cfg(unix)]
        loop {
            rx.drain();
            poller
                .poll(
                    &[(rx.source(), Interest::READ)],
                    Duration::from_millis(10),
                    &mut events,
                )
                .unwrap();
            if events.is_empty() {
                break;
            }
            assert!(Instant::now() < deadline, "drained waker must go quiet");
        }
    }

    #[test]
    fn interest_none_is_never_woken() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        tx.write_all(b"data").unwrap();
        let mut poller = Poller::new();
        let mut events = Vec::new();
        poller
            .poll(
                &[(Source::from_stream(&rx), Interest::NONE)],
                Duration::from_millis(10),
                &mut events,
            )
            .unwrap();
        assert!(events.is_empty(), "NONE interest must stay silent");
    }
}
