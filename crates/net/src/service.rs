//! The server-side protocol engine: turn a stream of wire frames into
//! batched table execution.
//!
//! A [`Service`] is the piece every transport shares — the TCP connection
//! handler and the in-process [`crate::loopback`] transport both feed raw
//! bytes into [`Service::process`]. Its central move is the wire equivalent
//! of the core's prefetch [`dlht_core::Pipeline`]:
//!
//! 1. every *complete* plain request frame in the input is decoded
//!    (zero-copy) and pushed into one reusable [`Batch`], issuing the
//!    request's software prefetch **at decode time**;
//! 2. when the input runs dry (= the bytes one socket read returned), the
//!    accumulated batch executes via `execute_prefetched` — the sweep was
//!    already paid frame by frame;
//! 3. one `RESP` frame per request is appended to the output, in submission
//!    order.
//!
//! A client that pipelines N requests in one write therefore gets exactly
//! the paper's batch execution (§3.3) on the server: wire pipelining ≙
//! prefetch pipeline depth. Explicit `BATCH` frames carry a
//! [`BatchPolicy`] and execute as their own batch; `STATS`/`LEN`/`PING`
//! are barriers that flush pending singles first so global ordering holds.

use crate::metrics::ServiceObs;
use crate::wire::{self, WireError};
use dlht_core::{Batch, BatchPolicy, KvBackend, Session, ShardedSession, ShardedTable, TableStats};
use std::time::Instant;

/// What a [`Service`] executes against: anything that can prefetch a key,
/// run a prefetched batch, and answer the `STATS`/`LEN` commands.
///
/// Implemented by the slot-cached per-connection sessions
/// ([`ShardedSession`], [`Session`]) and — through [`BackendEngine`] — by
/// every [`KvBackend`] in the repository, so the loopback transport can put
/// any table behind the wire.
pub trait ServiceEngine {
    /// Issue a software prefetch for wherever `key` lives.
    fn prefetch(&self, key: u64);
    /// Execute a batch whose requests were already prefetched one by one.
    fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy);
    /// Structural statistics for the `STATS` command.
    fn table_stats(&self) -> TableStats;
    /// Retired-index count for the `STATS` command.
    fn retired_indexes(&self) -> usize;
    /// Live keys for the `LEN` command (may be linear-time).
    fn live_keys(&self) -> u64;
    /// Which shard `key` routes to, for slow-op trace attribution.
    /// Unsharded engines stay on the default.
    fn shard_of(&self, _key: u64) -> u32 {
        0
    }
}

/// Engines work through shared references too, so several connections on
/// one event-loop worker can share that worker's single cached
/// [`ShardedSession`] (each connection still owns its own [`Service`] and
/// therefore its own reusable [`Batch`]).
impl<E: ServiceEngine + ?Sized> ServiceEngine for &E {
    fn prefetch(&self, key: u64) {
        (**self).prefetch(key);
    }
    fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        (**self).execute_prefetched(batch, policy);
    }
    fn table_stats(&self) -> TableStats {
        (**self).table_stats()
    }
    fn retired_indexes(&self) -> usize {
        (**self).retired_indexes()
    }
    fn live_keys(&self) -> u64 {
        (**self).live_keys()
    }
    fn shard_of(&self, key: u64) -> u32 {
        (**self).shard_of(key)
    }
}

impl ServiceEngine for ShardedSession<'_> {
    fn prefetch(&self, key: u64) {
        ShardedSession::prefetch(self, key);
    }
    fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        ShardedSession::execute_prefetched(self, batch, policy);
    }
    fn table_stats(&self) -> TableStats {
        self.table().stats()
    }
    fn retired_indexes(&self) -> usize {
        ShardedTable::retired_indexes(self.table())
    }
    fn live_keys(&self) -> u64 {
        self.table().len() as u64
    }
    fn shard_of(&self, key: u64) -> u32 {
        self.table().shard_of(key) as u32
    }
}

impl ServiceEngine for Session<'_> {
    fn prefetch(&self, key: u64) {
        Session::prefetch(self, key);
    }
    fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        Session::execute_prefetched(self, batch, policy);
    }
    fn table_stats(&self) -> TableStats {
        self.table().stats()
    }
    fn retired_indexes(&self) -> usize {
        self.table().retired_indexes()
    }
    fn live_keys(&self) -> u64 {
        self.table().len() as u64
    }
}

/// Adapter putting any [`KvBackend`] behind a [`Service`] (a newtype
/// because a blanket impl would collide with the session impls above).
/// `Arc<dyn KvBackend>` and `Box<dyn KvBackend>` work directly through the
/// core's blanket `KvBackend` impls for those containers.
pub struct BackendEngine<B: KvBackend>(pub B);

impl<B: KvBackend> ServiceEngine for BackendEngine<B> {
    fn prefetch(&self, key: u64) {
        self.0.prefetch_key(key);
    }
    fn execute_prefetched(&self, batch: &mut Batch, policy: BatchPolicy) {
        self.0.execute_prefetched(batch, policy);
    }
    fn table_stats(&self) -> TableStats {
        self.0.stats()
    }
    fn retired_indexes(&self) -> usize {
        self.0.retired_indexes()
    }
    fn live_keys(&self) -> u64 {
        self.0.len() as u64
    }
}

/// Per-connection counters, merged into the server-wide totals when the
/// connection closes (and visible live through [`Service::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Request frames decoded.
    pub frames: u64,
    /// Table operations executed (batch items count individually).
    pub ops: u64,
    /// Batch executions (each covers one drained pipeline window or one
    /// explicit `BATCH` frame).
    pub batches: u64,
    /// Deepest pipelined drain observed (requests per batch execution).
    pub max_drain: usize,
}

/// How the event loop should proceed after a protocol adapter handled a
/// chunk of input. The binary [`Service`] maps its `Result` onto this;
/// line-oriented adapters (the memcache persona) return it directly so a
/// clean `quit` is distinguishable from a protocol violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drive {
    /// Keep serving the connection.
    Keep,
    /// The peer asked to close (e.g. memcache `quit`): flush pending
    /// writes, then close without counting a protocol error.
    CloseClean,
    /// Unrecoverable protocol violation: flush the error answer already in
    /// the write buffer, count a protocol error, then close.
    CloseError,
}

/// The transport-independent connection engine (module docs above).
pub struct Service<E: ServiceEngine> {
    engine: E,
    /// Reusable batch: steady-state processing is allocation-free.
    batch: Batch,
    stats: ConnStats,
    /// Per-opcode latency recording; `None` keeps the hot path free of
    /// even the `Instant::now` calls.
    obs: Option<ServiceObs>,
}

impl<E: ServiceEngine> Service<E> {
    /// Create a service executing against `engine`.
    pub fn new(engine: E) -> Self {
        Service {
            engine,
            batch: Batch::with_capacity(64),
            stats: ConnStats::default(),
            obs: None,
        }
    }

    /// Record per-opcode decode→response-queued latencies (and slow-op
    /// traces) through `obs`.
    pub fn with_obs(mut self, obs: ServiceObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// This connection's counters so far.
    pub fn stats(&self) -> ConnStats {
        self.stats
    }

    /// Borrow the engine (tests, direct stats access).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Execute the accumulated plain-frame batch, appending one `RESP` frame
    /// per request to `out`.
    fn flush_singles(&mut self, out: &mut Vec<u8>, t0: Option<Instant>) {
        if self.batch.is_empty() {
            return;
        }
        self.stats.ops += self.batch.len() as u64;
        self.stats.batches += 1;
        self.stats.max_drain = self.stats.max_drain.max(self.batch.len());
        // Pipelined wire requests carry no policy: they execute RunAll, like
        // a pipeline flush (a stream has no meaningful batch boundary).
        self.engine
            .execute_prefetched(&mut self.batch, BatchPolicy::RunAll);
        for r in self.batch.responses() {
            wire::encode_response(out, *r);
        }
        // Every request in the drained window shares the window's
        // decode→response-queued span: that is the latency its client
        // observes, queueing included.
        if let (Some(obs), Some(t0)) = (&self.obs, t0) {
            let ns = t0.elapsed().as_nanos() as u64;
            let depth = self.batch.len() as u32;
            for req in self.batch.requests() {
                obs.record_request(req, self.engine.shard_of(req.key()), depth, ns);
            }
        }
        self.batch.clear();
    }

    /// Consume as many complete frames as `input` holds, appending response
    /// bytes to `out`. Returns how many input bytes were consumed; the
    /// caller keeps the unconsumed tail (an incomplete frame) for the next
    /// call.
    ///
    /// `Err` means the peer violated the protocol: every request decoded
    /// *before* the violation has executed and its response is in `out`,
    /// followed by one final [`wire::resp::ERR`] frame — the caller must
    /// write `out` and close the connection. The engine is untouched by the
    /// malformed frame itself, and this function never panics on arbitrary
    /// input.
    pub fn process(&mut self, input: &[u8], out: &mut Vec<u8>) -> Result<usize, WireError> {
        let t0 = self.obs.as_ref().map(|_| Instant::now());
        let mut consumed = 0;
        let result = loop {
            match wire::decode_frame(&input[consumed..]) {
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
                Ok(Some((frame, used))) => {
                    consumed += used;
                    self.stats.frames += 1;
                    if let Err(e) = self.handle_frame(frame.opcode, frame.payload, out, t0) {
                        break Err(e);
                    }
                }
            }
        };
        // Answer everything that was validly pipelined before the cut.
        self.flush_singles(out, t0);
        match result {
            Ok(()) => Ok(consumed),
            Err(e) => {
                wire::encode_error_frame(out, &e);
                Err(e)
            }
        }
    }

    fn handle_frame(
        &mut self,
        opcode: u8,
        payload: &[u8],
        out: &mut Vec<u8>,
        t0: Option<Instant>,
    ) -> Result<(), WireError> {
        match opcode {
            wire::op::GET | wire::op::PUT | wire::op::INSERT | wire::op::DELETE => {
                let req = wire::decode_request(opcode, payload)?;
                // The wire pipeline's submit-time prefetch: by the time the
                // drain executes, this request's cache line has had the rest
                // of the drained window to arrive.
                self.engine.prefetch(req.key());
                self.batch.push(req);
                Ok(())
            }
            wire::op::BATCH => {
                let (policy, count, items) = wire::decode_batch_header(payload)?;
                // Decode fully before executing: a malformed item must not
                // half-execute the batch. Ordering still holds because the
                // pending singles flush first.
                self.flush_singles(out, t0);
                debug_assert!(self.batch.is_empty());
                let mut iter = wire::BatchIter::new(items, count);
                for item in iter.by_ref() {
                    match item {
                        Ok(req) => {
                            self.engine.prefetch(req.key());
                            self.batch.push(req);
                        }
                        Err(e) => {
                            self.batch.clear();
                            return Err(e);
                        }
                    }
                }
                if let Err(e) = iter.finish() {
                    self.batch.clear();
                    return Err(e);
                }
                self.stats.ops += self.batch.len() as u64;
                self.stats.batches += 1;
                self.stats.max_drain = self.stats.max_drain.max(self.batch.len());
                self.engine.execute_prefetched(&mut self.batch, policy);
                wire::encode_batch_responses(out, self.batch.responses());
                if let (Some(obs), Some(t0)) = (&self.obs, t0) {
                    let first_key = self.batch.requests().first().map(|r| r.key());
                    let len = self.batch.len() as u32;
                    obs.record_batch(first_key, len, t0.elapsed().as_nanos() as u64);
                }
                self.batch.clear();
                Ok(())
            }
            wire::op::STATS => {
                if !payload.is_empty() {
                    return Err(WireError::BadPayload {
                        opcode,
                        len: payload.len(),
                    });
                }
                self.flush_singles(out, t0);
                wire::encode_stats(
                    out,
                    &self.engine.table_stats(),
                    self.engine.retired_indexes(),
                );
                Ok(())
            }
            wire::op::LEN => {
                if !payload.is_empty() {
                    return Err(WireError::BadPayload {
                        opcode,
                        len: payload.len(),
                    });
                }
                self.flush_singles(out, t0);
                wire::encode_len(out, self.engine.live_keys());
                Ok(())
            }
            wire::op::PING => {
                self.flush_singles(out, t0);
                wire::put_header(out, wire::resp::PONG, payload.len());
                out.extend_from_slice(payload);
                Ok(())
            }
            other => Err(WireError::UnknownOpcode(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlht_core::{Request, Response};
    use std::sync::Arc;

    fn service() -> Service<BackendEngine<Arc<ShardedTable>>> {
        let table = Arc::new(ShardedTable::with_capacity(2, 1024));
        Service::new(BackendEngine(table))
    }

    fn run(svc: &mut Service<BackendEngine<Arc<ShardedTable>>>, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        let consumed = svc.process(input, &mut out).expect("valid input");
        assert_eq!(consumed, input.len());
        out
    }

    fn parse_responses(mut bytes: &[u8]) -> Vec<Response> {
        let mut resps = Vec::new();
        while !bytes.is_empty() {
            let (frame, used) = wire::decode_frame(bytes).unwrap().unwrap();
            assert_eq!(frame.opcode, wire::resp::RESP);
            resps.push(wire::decode_response(frame.payload).unwrap());
            bytes = &bytes[used..];
        }
        resps
    }

    #[test]
    fn pipelined_singles_drain_into_one_batch() {
        let mut svc = service();
        let mut input = Vec::new();
        wire::encode_request(&mut input, Request::Insert(1, 10));
        wire::encode_request(&mut input, Request::Get(1));
        wire::encode_request(&mut input, Request::Delete(1));
        wire::encode_request(&mut input, Request::Get(1));
        let out = run(&mut svc, &input);
        let resps = parse_responses(&out);
        assert_eq!(resps[1], Response::Value(Some(10)));
        assert_eq!(resps[2], Response::Deleted(Some(10)));
        assert_eq!(resps[3], Response::Value(None));
        let stats = svc.stats();
        assert_eq!(stats.frames, 4);
        assert_eq!(stats.ops, 4);
        assert_eq!(stats.batches, 1, "one drain = one batch execution");
        assert_eq!(stats.max_drain, 4);
    }

    #[test]
    fn partial_frames_consume_nothing() {
        let mut svc = service();
        let mut input = Vec::new();
        wire::encode_request(&mut input, Request::Get(9));
        let mut out = Vec::new();
        for cut in 0..input.len() {
            assert_eq!(svc.process(&input[..cut], &mut out).unwrap(), 0);
            assert!(out.is_empty());
        }
        // One trailing partial frame after a complete one: only the complete
        // frame is consumed.
        let full_len = input.len();
        wire::encode_request(&mut input, Request::Get(10));
        let consumed = svc.process(&input[..full_len + 3], &mut out).unwrap();
        assert_eq!(consumed, full_len);
        assert_eq!(parse_responses(&out).len(), 1);
    }

    #[test]
    fn malformed_frame_answers_earlier_requests_then_errs() {
        let mut svc = service();
        let mut input = Vec::new();
        wire::encode_request(&mut input, Request::Insert(5, 50));
        input.extend_from_slice(&[0x00; 8]); // bad magic
        let mut out = Vec::new();
        let err = svc.process(&input, &mut out).unwrap_err();
        assert_eq!(err, WireError::BadMagic(0));
        // The valid insert executed and was answered; then the ERR frame.
        let (frame, used) = wire::decode_frame(&out).unwrap().unwrap();
        assert_eq!(frame.opcode, wire::resp::RESP);
        assert!(wire::decode_response(frame.payload).unwrap().succeeded());
        let (err_frame, _) = wire::decode_frame(&out[used..]).unwrap().unwrap();
        assert_eq!(err_frame.opcode, wire::resp::ERR);
        assert_eq!(svc.engine().0.get(5), Some(50));
    }

    #[test]
    fn explicit_batch_respects_policy_and_slots() {
        let mut svc = service();
        let mut input = Vec::new();
        wire::encode_batch(
            &mut input,
            &[
                Request::Insert(1, 1),
                Request::Insert(1, 2), // duplicate -> failure
                Request::Insert(2, 2),
            ],
            BatchPolicy::StopOnFailure,
        );
        let out = run(&mut svc, &input);
        let (frame, _) = wire::decode_frame(&out).unwrap().unwrap();
        assert_eq!(frame.opcode, wire::resp::RESP_BATCH);
        let mut resps = Vec::new();
        wire::decode_batch_responses(frame.payload, &mut resps).unwrap();
        assert!(resps[0].succeeded());
        assert!(!resps[1].succeeded());
        assert_eq!(resps[2], Response::Skipped);
        assert_eq!(svc.engine().0.get(2), None, "skipped insert must not run");
    }

    #[test]
    fn stats_len_and_ping_are_barriers() {
        let mut svc = service();
        let mut input = Vec::new();
        wire::encode_request(&mut input, Request::Insert(3, 30));
        wire::encode_empty(&mut input, wire::op::STATS);
        wire::encode_empty(&mut input, wire::op::LEN);
        wire::put_header(&mut input, wire::op::PING, 2);
        input.extend_from_slice(b"hi");
        let out = run(&mut svc, &input);
        // RESP (the flushed insert), then STATS, LEN, PONG.
        let (f1, u1) = wire::decode_frame(&out).unwrap().unwrap();
        assert_eq!(f1.opcode, wire::resp::RESP);
        let (f2, u2) = wire::decode_frame(&out[u1..]).unwrap().unwrap();
        assert_eq!(f2.opcode, wire::resp::RESP_STATS);
        let stats = wire::decode_stats(f2.payload).unwrap();
        assert_eq!(stats.table.occupied_slots, 1);
        let (f3, u3) = wire::decode_frame(&out[u1 + u2..]).unwrap().unwrap();
        assert_eq!(f3.opcode, wire::resp::RESP_LEN);
        assert_eq!(wire::decode_len(f3.payload).unwrap(), 1);
        let (f4, _) = wire::decode_frame(&out[u1 + u2 + u3..]).unwrap().unwrap();
        assert_eq!(f4.opcode, wire::resp::PONG);
        assert_eq!(f4.payload, b"hi");
    }

    #[test]
    fn session_engine_serves_the_same_semantics() {
        let table = ShardedTable::with_capacity(4, 1024);
        let session = table.session();
        let mut svc = Service::new(session);
        let mut input = Vec::new();
        wire::encode_request(&mut input, Request::Insert(7, 70));
        wire::encode_request(&mut input, Request::Get(7));
        let mut out = Vec::new();
        svc.process(&input, &mut out).unwrap();
        let resps = parse_responses(&out);
        assert_eq!(resps[1], Response::Value(Some(70)));
        assert_eq!(svc.engine().table().len(), 1);
    }
}
