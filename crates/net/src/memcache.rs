//! The memcache text protocol: a second persona over the same event-driven
//! server core, so any stock memcache client or load generator can drive a
//! DLHT-backed cache.
//!
//! ## Parser / response split
//!
//! [`MemcacheConn`] is a per-connection state machine with exactly two
//! states: waiting for a command **line**, or waiting for a storage
//! command's **data block** (`bytes` + CRLF). It follows the same
//! consumed-bytes contract as the binary [`crate::Service`]: partial input
//! consumes nothing and stays buffered in the connection's read ring until
//! more bytes arrive, so lines and data blocks may be split across reads at
//! any byte boundary.
//!
//! Malformed input is answered, never panicked on:
//!
//! * recoverable mistakes (unknown command, bad flags, oversized key, a
//!   non-numeric `incr` argument) answer `ERROR`/`CLIENT_ERROR` and keep
//!   the connection open — framing is still intact;
//! * unrecoverable framing (unparseable byte count, line longer than
//!   [`MAX_LINE`], a data block not terminated by CRLF) answers
//!   `CLIENT_ERROR` and closes, because the byte stream can no longer be
//!   trusted.
//!
//! A storage command whose *header* was rejected but whose framing is fine
//! (e.g. oversize key with a parseable byte count) still swallows its data
//! block before answering, exactly like memcached — the next pipelined
//! command parses cleanly and no half-executed state is left behind.
//!
//! ## Commands
//!
//! `get`/`gets` (multi-key), `set`/`add`/`replace`, `delete`, `touch`,
//! `incr`/`decr`, `flush_all`, `stats`, `version`, `quit`, with `noreply`
//! on mutations. Expiry follows memcache semantics: `0` = never, values up
//! to 30 days are relative seconds, larger values are absolute unix
//! timestamps, negative means already expired.

use crate::metrics::{classify_line, McObs};
use crate::service::{ConnStats, Drive};
use dlht_core::{CacheSession, CounterError, StoreOutcome};
use dlht_obs::bytes_fingerprint;
use std::time::Instant;

/// Longest accepted command line (memcached uses 2048; multi-key `get`s
/// get head-room). Anything longer is an unrecoverable framing error.
pub const MAX_LINE: usize = 8 * 1024;

/// Longest accepted key, per the memcache protocol.
pub const MAX_KEY: usize = 250;

/// Largest accepted value (matches the binary protocol's
/// [`crate::MAX_PAYLOAD`]).
pub const MAX_VALUE: usize = 1024 * 1024;

/// Version string answered to `version` (stock clients parse the line).
pub const VERSION_LINE: &[u8] = b"VERSION 1.6.0-dlht\r\n";

const CRLF: &[u8] = b"\r\n";

/// Which storage command a pending data block belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoreOp {
    Set,
    Add,
    Replace,
}

/// A storage command whose header line parsed well enough to frame the data
/// block that follows it.
struct PendingStore {
    op: StoreOp,
    key: Vec<u8>,
    flags: u32,
    exptime: i64,
    bytes: usize,
    noreply: bool,
    /// Header was semantically rejected (bad key/flags/exptime): swallow
    /// the data block, then answer this instead of storing.
    reject: Option<&'static [u8]>,
    /// When the header line was decoded — the store's latency sample spans
    /// header decode to response queued (set only while recording).
    t0: Option<Instant>,
}

enum State {
    /// Waiting for a complete command line.
    Line,
    /// Waiting for `bytes + CRLF` of a storage command's data block.
    Data(PendingStore),
}

/// What a handled command line asks the connection driver to do next.
enum LineOutcome {
    Continue,
    Close(Drive),
}

/// Per-connection memcache protocol state. One lives in each connection on
/// a `--protocol memcache` listener, driven by the worker's event loop with
/// the worker's shared [`CacheSession`] as its engine.
pub struct MemcacheConn {
    state: State,
    stats: ConnStats,
    /// Per-command latency recording; `None` keeps the hot path free of
    /// even the `Instant::now` calls.
    obs: Option<McObs>,
}

impl Default for MemcacheConn {
    fn default() -> Self {
        Self::new()
    }
}

impl MemcacheConn {
    /// A fresh connection, waiting for its first command line.
    pub fn new() -> Self {
        MemcacheConn {
            state: State::Line,
            stats: ConnStats::default(),
            obs: None,
        }
    }

    /// Record per-command decode→response-queued latencies (and slow-op
    /// traces) through `obs`.
    pub fn with_obs(mut self, obs: McObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Counters in the same shape as the binary service: `frames` counts
    /// command lines, `ops` engine operations, `batches` process calls that
    /// handled at least one command, `max_drain` the largest such call.
    pub fn stats(&self) -> ConnStats {
        self.stats
    }

    /// Serve every complete command in `input`, appending response bytes to
    /// `out`. Returns the number of input bytes consumed plus how the
    /// connection should proceed; partial trailing commands consume nothing
    /// and must be re-offered with more bytes later.
    pub fn process(
        &mut self,
        session: &mut CacheSession<'_>,
        input: &[u8],
        out: &mut Vec<u8>,
    ) -> (usize, Drive) {
        let mut consumed = 0;
        let mut commands = 0u64;
        let mut ops = 0u64;
        let drive = loop {
            let rest = &input[consumed..];
            match &mut self.state {
                State::Line => {
                    let Some(nl) = find_newline(rest) else {
                        if rest.len() > MAX_LINE {
                            out.extend_from_slice(b"CLIENT_ERROR line too long\r\n");
                            consumed = input.len();
                            break Drive::CloseError;
                        }
                        break Drive::Keep; // wait for the rest of the line
                    };
                    let line = strip_cr(&rest[..nl]);
                    consumed += nl + 1;
                    commands += 1;
                    let t0 = self.obs.as_ref().map(|_| Instant::now());
                    let outcome = self.handle_line(line, session, out, &mut ops, t0);
                    if let (Some(obs), Some(t0)) = (&self.obs, t0) {
                        // Storage headers defer their sample to the data
                        // block; everything else is answered here.
                        if !matches!(self.state, State::Data(_)) {
                            let (idx, key_fp) = classify_line(line);
                            obs.record(idx, key_fp, t0.elapsed().as_nanos() as u64);
                        }
                    }
                    match outcome {
                        LineOutcome::Continue => {}
                        LineOutcome::Close(drive) => break drive,
                    }
                }
                State::Data(pending) => {
                    let need = pending.bytes + CRLF.len();
                    if rest.len() < need {
                        break Drive::Keep; // wait for the full data block
                    }
                    consumed += need;
                    let State::Data(pending) = std::mem::replace(&mut self.state, State::Line)
                    else {
                        unreachable!("matched State::Data above");
                    };
                    if &rest[pending.bytes..need] != CRLF {
                        out.extend_from_slice(b"CLIENT_ERROR bad data chunk\r\n");
                        break Drive::CloseError;
                    }
                    let data = &rest[..pending.bytes];
                    ops += 1;
                    let sample = match (&self.obs, pending.t0) {
                        (Some(_), Some(t0)) => {
                            let cmd: &[u8] = match pending.op {
                                StoreOp::Set => b"set",
                                StoreOp::Add => b"add",
                                StoreOp::Replace => b"replace",
                            };
                            Some((classify_line(cmd).0, bytes_fingerprint(&pending.key), t0))
                        }
                        _ => None,
                    };
                    execute_store(session, pending, data, out);
                    if let (Some(obs), Some((idx, key_fp, t0))) = (&self.obs, sample) {
                        obs.record(idx, key_fp, t0.elapsed().as_nanos() as u64);
                    }
                }
            }
        };
        if commands > 0 {
            self.stats.frames += commands;
            self.stats.ops += ops;
            self.stats.batches += 1;
            self.stats.max_drain = self.stats.max_drain.max(commands as usize);
        }
        (consumed, drive)
    }

    /// Parse and execute one command line (everything except data blocks).
    fn handle_line(
        &mut self,
        line: &[u8],
        session: &mut CacheSession<'_>,
        out: &mut Vec<u8>,
        ops: &mut u64,
        t0: Option<Instant>,
    ) -> LineOutcome {
        let mut tokens = Tokens::new(line);
        let Some(command) = tokens.next() else {
            out.extend_from_slice(b"ERROR\r\n");
            return LineOutcome::Continue;
        };
        match command {
            b"get" | b"gets" => {
                let want_cas = command == b"gets";
                let mut served = 0usize;
                for key in tokens.by_ref() {
                    if !valid_key(key) {
                        out.extend_from_slice(b"CLIENT_ERROR bad key\r\n");
                        return LineOutcome::Continue;
                    }
                    *ops += 1;
                    session.get_with(key, |view| {
                        out.extend_from_slice(b"VALUE ");
                        out.extend_from_slice(key);
                        out.push(b' ');
                        put_dec(out, u64::from(view.flags));
                        out.push(b' ');
                        put_dec(out, view.value.len() as u64);
                        if want_cas {
                            out.push(b' ');
                            put_dec(out, view.cas);
                        }
                        out.extend_from_slice(CRLF);
                        out.extend_from_slice(view.value);
                        out.extend_from_slice(CRLF);
                    });
                    served += 1;
                }
                if served == 0 {
                    out.extend_from_slice(b"ERROR\r\n");
                } else {
                    out.extend_from_slice(b"END\r\n");
                }
                LineOutcome::Continue
            }
            b"set" | b"add" | b"replace" => {
                let op = match command {
                    b"set" => StoreOp::Set,
                    b"add" => StoreOp::Add,
                    _ => StoreOp::Replace,
                };
                self.begin_store(op, &mut tokens, out, t0)
            }
            b"delete" => {
                let (key, noreply, ok) = key_and_noreply(&mut tokens);
                if !ok {
                    out.extend_from_slice(b"CLIENT_ERROR bad command line format\r\n");
                    return LineOutcome::Continue;
                }
                *ops += 1;
                let deleted = session.delete(key);
                if !noreply {
                    out.extend_from_slice(if deleted {
                        b"DELETED\r\n"
                    } else {
                        b"NOT_FOUND\r\n"
                    });
                }
                LineOutcome::Continue
            }
            b"touch" => {
                let key = tokens.next().unwrap_or(b"");
                let exptime = tokens.next().and_then(parse_i64);
                let noreply = tokens.next() == Some(b"noreply");
                if !valid_key(key) || exptime.is_none() || tokens.next().is_some() {
                    out.extend_from_slice(b"CLIENT_ERROR bad command line format\r\n");
                    return LineOutcome::Continue;
                }
                *ops += 1;
                let touched = session.touch(key, exptime.expect("checked above"));
                if !noreply {
                    out.extend_from_slice(if touched {
                        b"TOUCHED\r\n"
                    } else {
                        b"NOT_FOUND\r\n"
                    });
                }
                LineOutcome::Continue
            }
            b"incr" | b"decr" => {
                let key = tokens.next().unwrap_or(b"");
                let delta = tokens.next().map(|t| (t, parse_u64(t)));
                let noreply = tokens.next() == Some(b"noreply");
                if !valid_key(key) || delta.is_none() || tokens.next().is_some() {
                    out.extend_from_slice(b"CLIENT_ERROR bad command line format\r\n");
                    return LineOutcome::Continue;
                }
                let Some((_, Some(delta))) = delta else {
                    out.extend_from_slice(b"CLIENT_ERROR invalid numeric delta argument\r\n");
                    return LineOutcome::Continue;
                };
                *ops += 1;
                let result = if command == b"incr" {
                    session.incr(key, delta)
                } else {
                    session.decr(key, delta)
                };
                if !noreply {
                    match result {
                        Ok(value) => {
                            put_dec(out, value);
                            out.extend_from_slice(CRLF);
                        }
                        Err(CounterError::NotFound) => {
                            out.extend_from_slice(b"NOT_FOUND\r\n");
                        }
                        Err(CounterError::NotNumeric) => out.extend_from_slice(
                            b"CLIENT_ERROR cannot increment or decrement non-numeric value\r\n",
                        ),
                    }
                }
                LineOutcome::Continue
            }
            b"flush_all" => {
                let mut delay = 0u64;
                let mut noreply = false;
                match tokens.next() {
                    None => {}
                    Some(b"noreply") => noreply = true,
                    Some(tok) => match parse_u64(tok) {
                        Some(d) => {
                            delay = d;
                            noreply = tokens.next() == Some(b"noreply");
                        }
                        None => {
                            out.extend_from_slice(b"CLIENT_ERROR bad command line format\r\n");
                            return LineOutcome::Continue;
                        }
                    },
                }
                if delay != 0 {
                    out.extend_from_slice(b"CLIENT_ERROR delayed flush not supported\r\n");
                    return LineOutcome::Continue;
                }
                *ops += 1;
                session.flush_all();
                if !noreply {
                    out.extend_from_slice(b"OK\r\n");
                }
                LineOutcome::Continue
            }
            b"stats" => {
                write_stats(session, out);
                LineOutcome::Continue
            }
            b"version" => {
                out.extend_from_slice(VERSION_LINE);
                LineOutcome::Continue
            }
            b"quit" => LineOutcome::Close(Drive::CloseClean),
            _ => {
                out.extend_from_slice(b"ERROR\r\n");
                LineOutcome::Continue
            }
        }
    }

    /// Parse a storage header line. On success (or on a semantic reject
    /// with intact framing) the connection enters the data state.
    fn begin_store(
        &mut self,
        op: StoreOp,
        tokens: &mut Tokens<'_>,
        out: &mut Vec<u8>,
        t0: Option<Instant>,
    ) -> LineOutcome {
        let key = tokens.next().unwrap_or(b"").to_vec();
        let flags = tokens.next().map(parse_u64);
        let exptime = tokens.next().map(parse_i64);
        let bytes = tokens.next().map(parse_u64);
        let noreply = match tokens.next() {
            None => false,
            Some(b"noreply") => true,
            Some(_) => {
                out.extend_from_slice(b"CLIENT_ERROR bad command line format\r\n");
                return LineOutcome::Continue;
            }
        };
        if tokens.next().is_some() {
            out.extend_from_slice(b"CLIENT_ERROR bad command line format\r\n");
            return LineOutcome::Continue;
        }
        // The byte count frames the stream: without it (or with an absurd
        // one) the data block cannot be skipped and the connection is lost.
        let Some(Some(bytes)) = bytes else {
            out.extend_from_slice(b"CLIENT_ERROR bad data chunk length\r\n");
            return LineOutcome::Close(Drive::CloseError);
        };
        let Ok(bytes) = usize::try_from(bytes) else {
            out.extend_from_slice(b"CLIENT_ERROR bad data chunk length\r\n");
            return LineOutcome::Close(Drive::CloseError);
        };
        if bytes > MAX_VALUE {
            out.extend_from_slice(b"SERVER_ERROR object too large for cache\r\n");
            return LineOutcome::Close(Drive::CloseError);
        }
        // Semantic problems with intact framing: remember the rejection,
        // swallow the data block, answer afterwards (memcached behaviour).
        let reject = if !valid_key(&key) {
            Some(b"CLIENT_ERROR bad key\r\n" as &[u8])
        } else if flags.is_none() || exptime.is_none() {
            Some(b"CLIENT_ERROR bad command line format\r\n" as &[u8])
        } else {
            match (flags, exptime) {
                (Some(None), _) | (_, Some(None)) => {
                    Some(b"CLIENT_ERROR bad command line format\r\n" as &[u8])
                }
                _ => None,
            }
        };
        let flags = flags.flatten().and_then(|f| u32::try_from(f).ok());
        let reject = match (reject, flags) {
            (Some(r), _) => Some(r),
            (None, None) => Some(b"CLIENT_ERROR bad command line format\r\n" as &[u8]),
            (None, Some(_)) => None,
        };
        self.state = State::Data(PendingStore {
            op,
            key,
            flags: flags.unwrap_or(0),
            exptime: exptime.flatten().unwrap_or(0),
            bytes,
            noreply,
            reject,
            t0,
        });
        LineOutcome::Continue
    }
}

/// Execute a framed storage command against the cache.
fn execute_store(
    session: &mut CacheSession<'_>,
    pending: PendingStore,
    data: &[u8],
    out: &mut Vec<u8>,
) {
    if let Some(reject) = pending.reject {
        if !pending.noreply {
            out.extend_from_slice(reject);
        }
        return;
    }
    let result = match pending.op {
        StoreOp::Set => session.set(&pending.key, data, pending.flags, pending.exptime),
        StoreOp::Add => session.add(&pending.key, data, pending.flags, pending.exptime),
        StoreOp::Replace => session.replace(&pending.key, data, pending.flags, pending.exptime),
    };
    if pending.noreply {
        return;
    }
    match result {
        Ok(StoreOutcome::Stored) => out.extend_from_slice(b"STORED\r\n"),
        Ok(StoreOutcome::NotStored) => out.extend_from_slice(b"NOT_STORED\r\n"),
        Err(_) => out.extend_from_slice(b"SERVER_ERROR store failed\r\n"),
    }
}

/// The `stats` command: the cache counters in `STAT <name> <value>` lines.
fn write_stats(session: &CacheSession<'_>, out: &mut Vec<u8>) {
    let stats = session.map().stats();
    let mut stat = |name: &[u8], value: u64| {
        out.extend_from_slice(b"STAT ");
        out.extend_from_slice(name);
        out.push(b' ');
        put_dec(out, value);
        out.extend_from_slice(CRLF);
    };
    stat(b"uptime", u64::from(stats.uptime_secs));
    stat(b"curr_items", stats.items);
    stat(b"bytes", stats.value_bytes);
    stat(b"index_bytes", stats.index_bytes);
    stat(b"limit_maxbytes", stats.budget);
    stat(b"cmd_get", stats.hits + stats.misses);
    stat(b"cmd_set", stats.sets);
    stat(b"get_hits", stats.hits);
    stat(b"get_misses", stats.misses);
    stat(b"expired", stats.expired);
    stat(b"evictions", stats.evicted);
    stat(b"flushes", stats.flushes);
    stat(b"pending_reclaim_bytes", stats.pending_reclaim_bytes);
    out.extend_from_slice(b"END\r\n");
}

// ---------------------------------------------------------------------------
// Lexing helpers
// ---------------------------------------------------------------------------

/// Space-separated tokens; runs of spaces collapse (memcached's tokenizer).
struct Tokens<'a> {
    rest: &'a [u8],
}

impl<'a> Tokens<'a> {
    fn new(line: &'a [u8]) -> Self {
        Tokens { rest: line }
    }
}

impl<'a> Iterator for Tokens<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        while let [b' ', tail @ ..] = self.rest {
            self.rest = tail;
        }
        if self.rest.is_empty() {
            return None;
        }
        let end = self
            .rest
            .iter()
            .position(|&b| b == b' ')
            .unwrap_or(self.rest.len());
        let (token, tail) = self.rest.split_at(end);
        self.rest = tail;
        Some(token)
    }
}

fn find_newline(data: &[u8]) -> Option<usize> {
    data.iter().take(MAX_LINE + 1).position(|&b| b == b'\n')
}

fn strip_cr(line: &[u8]) -> &[u8] {
    match line {
        [head @ .., b'\r'] => head,
        _ => line,
    }
}

/// Memcache key rules: 1–250 bytes, no whitespace or control characters.
fn valid_key(key: &[u8]) -> bool {
    !key.is_empty() && key.len() <= MAX_KEY && key.iter().all(|&b| b > 32 && b != 127)
}

/// Strict unsigned decimal (rejects signs, spaces, overflow).
fn parse_u64(token: &[u8]) -> Option<u64> {
    dlht_core::parse_decimal_u64(token)
}

/// Strict signed decimal for exptimes.
fn parse_i64(token: &[u8]) -> Option<i64> {
    match token {
        [b'-', digits @ ..] => {
            let magnitude = dlht_core::parse_decimal_u64(digits)?;
            (magnitude <= i64::MAX as u64 + 1).then(|| (magnitude as i64).wrapping_neg())
        }
        _ => {
            let value = dlht_core::parse_decimal_u64(token)?;
            i64::try_from(value).ok()
        }
    }
}

/// Append `value` in decimal ASCII without allocating.
fn put_dec(out: &mut Vec<u8>, value: u64) {
    let mut buf = [0u8; 20];
    out.extend_from_slice(dlht_core::format_decimal_u64(&mut buf, value));
}

/// `delete`-style argument lists: one key, optional `noreply`, nothing else.
/// Returns `(key, noreply, valid)`.
fn key_and_noreply<'a>(tokens: &mut Tokens<'a>) -> (&'a [u8], bool, bool) {
    let key = tokens.next().unwrap_or(b"");
    let noreply = tokens.next() == Some(b"noreply");
    let valid = valid_key(key) && tokens.next().is_none();
    (key, noreply, valid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlht_core::{CacheConfig, CacheMap};

    fn run(
        conn: &mut MemcacheConn,
        session: &mut CacheSession<'_>,
        input: &[u8],
    ) -> (Vec<u8>, usize, Drive) {
        let mut out = Vec::new();
        let (consumed, drive) = conn.process(session, input, &mut out);
        (out, consumed, drive)
    }

    #[test]
    fn set_get_roundtrip_with_flags() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let input = b"set greeting 42 0 5\r\nhello\r\nget greeting\r\n";
        let (out, consumed, drive) = run(&mut conn, &mut session, input);
        assert_eq!(consumed, input.len());
        assert!(matches!(drive, Drive::Keep));
        assert_eq!(
            out,
            b"STORED\r\nVALUE greeting 42 5\r\nhello\r\nEND\r\n".to_vec()
        );
    }

    #[test]
    fn gets_reports_cas_and_multi_key() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let _ = run(
            &mut conn,
            &mut session,
            b"set a 0 0 1\r\nx\r\nset b 0 0 1\r\ny\r\n",
        );
        let (out, _, _) = run(&mut conn, &mut session, b"gets a b missing\r\n");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("VALUE a 0 1 1\r\nx\r\nVALUE b 0 1 2\r\ny\r\n"));
        assert!(text.ends_with("END\r\n"));
        assert!(!text.contains("missing"));
    }

    #[test]
    fn partial_input_consumes_nothing() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        // Split the command at every byte boundary; the final state must be
        // identical to sending it whole.
        let full = b"set k 0 0 3\r\nabc\r\nget k\r\n";
        for split in 1..full.len() {
            let map = CacheMap::new(CacheConfig::default());
            let mut session = map.session();
            let mut conn = MemcacheConn::new();
            let mut pending: Vec<u8> = Vec::new();
            let mut out = Vec::new();
            for part in [&full[..split], &full[split..]] {
                pending.extend_from_slice(part);
                let (consumed, drive) = conn.process(&mut session, &pending, &mut out);
                assert!(matches!(drive, Drive::Keep), "split at {split}");
                pending.drain(..consumed);
            }
            assert_eq!(
                out,
                b"STORED\r\nVALUE k 0 3\r\nabc\r\nEND\r\n".to_vec(),
                "split at {split}"
            );
            assert!(pending.is_empty(), "split at {split}");
        }
        // And a bare partial line consumes zero bytes.
        let (out, consumed, drive) = run(&mut conn, &mut session, b"get onl");
        assert_eq!((out.as_slice(), consumed), (&b""[..], 0));
        assert!(matches!(drive, Drive::Keep));
    }

    #[test]
    fn add_replace_delete_touch_semantics() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let (out, _, _) = run(
            &mut conn,
            &mut session,
            b"add k 0 0 1\r\na\r\nadd k 0 0 1\r\nb\r\nreplace k 0 0 1\r\nc\r\nreplace nope 0 0 1\r\nd\r\ndelete k\r\ndelete k\r\ntouch k 5\r\n",
        );
        assert_eq!(
            out,
            b"STORED\r\nNOT_STORED\r\nSTORED\r\nNOT_STORED\r\nDELETED\r\nNOT_FOUND\r\nNOT_FOUND\r\n"
                .to_vec()
        );
    }

    #[test]
    fn incr_decr_and_noreply() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let (out, _, _) = run(
            &mut conn,
            &mut session,
            b"set n 0 0 2 noreply\r\n10\r\nincr n 5\r\ndecr n 100\r\nincr n bad\r\nincr missing 1\r\n",
        );
        assert_eq!(
            out,
            b"15\r\n0\r\nCLIENT_ERROR invalid numeric delta argument\r\nNOT_FOUND\r\n".to_vec()
        );
    }

    #[test]
    fn stats_and_version_and_flush() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let _ = run(&mut conn, &mut session, b"set s 0 0 1\r\nv\r\n");
        let (out, _, _) = run(&mut conn, &mut session, b"stats\r\n");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("STAT curr_items 1\r\n"), "{text}");
        assert!(text.contains("STAT evictions 0\r\n"), "{text}");
        assert!(text.ends_with("END\r\n"));
        let (out, _, _) = run(&mut conn, &mut session, b"version\r\n");
        assert_eq!(out, VERSION_LINE.to_vec());
        let (out, _, _) = run(&mut conn, &mut session, b"flush_all\r\nget s\r\n");
        assert_eq!(out, b"OK\r\nEND\r\n".to_vec());
    }

    #[test]
    fn quit_closes_cleanly() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let (out, consumed, drive) = run(&mut conn, &mut session, b"quit\r\nset x 0 0 1\r\n");
        assert!(out.is_empty());
        assert_eq!(consumed, 6, "nothing after quit is consumed");
        assert!(matches!(drive, Drive::CloseClean));
    }

    #[test]
    fn rejected_store_header_still_swallows_its_data_block() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let long_key = vec![b'k'; 300];
        let mut input = b"set ".to_vec();
        input.extend_from_slice(&long_key);
        input.extend_from_slice(b" 0 0 3\r\nabc\r\nget ok\r\n");
        let (out, consumed, drive) = run(&mut conn, &mut session, &input);
        assert_eq!(consumed, input.len(), "data block + next command consumed");
        assert!(matches!(drive, Drive::Keep));
        assert_eq!(out, b"CLIENT_ERROR bad key\r\nEND\r\n".to_vec());
        assert_eq!(map.len(), 0, "nothing was stored");
    }

    #[test]
    fn unparseable_byte_count_closes_the_connection() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let (out, _, drive) = run(&mut conn, &mut session, b"set k 0 0 banana\r\n");
        assert_eq!(out, b"CLIENT_ERROR bad data chunk length\r\n".to_vec());
        assert!(matches!(drive, Drive::CloseError));
    }

    #[test]
    fn bad_data_terminator_closes_the_connection() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let (out, _, drive) = run(&mut conn, &mut session, b"set k 0 0 3\r\nabcXXget k\r\n");
        assert_eq!(out, b"CLIENT_ERROR bad data chunk\r\n".to_vec());
        assert!(matches!(drive, Drive::CloseError));
    }

    #[test]
    fn oversized_line_closes_the_connection() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let input = vec![b'g'; MAX_LINE + 2];
        let (out, consumed, drive) = run(&mut conn, &mut session, &input);
        assert_eq!(out, b"CLIENT_ERROR line too long\r\n".to_vec());
        assert_eq!(consumed, input.len());
        assert!(matches!(drive, Drive::CloseError));
    }

    #[test]
    fn unknown_commands_answer_error_and_stay_open() {
        let map = CacheMap::new(CacheConfig::default());
        let mut session = map.session();
        let mut conn = MemcacheConn::new();
        let (out, _, drive) = run(
            &mut conn,
            &mut session,
            b"bogus\r\n\r\nget\r\nset k 0 0 1\r\nv\r\n",
        );
        assert_eq!(out, b"ERROR\r\nERROR\r\nERROR\r\nSTORED\r\n".to_vec());
        assert!(matches!(drive, Drive::Keep));
    }

    #[test]
    fn expiry_pivot_parses_negative_and_absolute() {
        assert_eq!(parse_i64(b"-1"), Some(-1));
        assert_eq!(parse_i64(b"0"), Some(0));
        assert_eq!(parse_i64(b"2592000"), Some(2_592_000));
        assert_eq!(parse_i64(b"9223372036854775808"), None);
        assert_eq!(parse_i64(b"-9223372036854775808"), Some(i64::MIN));
        assert_eq!(parse_i64(b"--1"), None);
        assert_eq!(parse_i64(b"1 "), None);
    }
}
