//! Shared helpers for tests and benches that need a throwaway server on an
//! ephemeral loopback port.
//!
//! Before this module existed, `bench_server` and the server integration
//! tests each carried their own copy of the bind boilerplate; keeping the
//! retry policy in one place means a transient bind failure (ephemeral-port
//! exhaustion under parallel test runs) is handled identically everywhere.

use crate::server::{DlhtServer, ServerConfig};
use dlht_core::{CacheMap, ShardedTable};
use std::sync::Arc;

/// How many times a transient ephemeral bind failure is retried before the
/// helper gives up.
const BIND_ATTEMPTS: usize = 3;

fn retry_bind(mut bind: impl FnMut() -> std::io::Result<DlhtServer>, what: &str) -> DlhtServer {
    let mut last = None;
    for _ in 0..BIND_ATTEMPTS {
        match bind() {
            Ok(server) => return server,
            Err(e) => last = Some(e),
        }
    }
    panic!("failed to bind an ephemeral {what} after {BIND_ATTEMPTS} attempts: {last:?}");
}

/// Bind a kv-persona [`DlhtServer`] on `127.0.0.1` with an OS-assigned
/// port, retrying transient failures. Panics if the OS refuses repeatedly —
/// in a test that is the right outcome.
pub fn bind_ephemeral(table: Arc<ShardedTable>, config: ServerConfig) -> DlhtServer {
    retry_bind(
        || DlhtServer::bind_with("127.0.0.1:0", table.clone(), config.clone()),
        "kv server",
    )
}

/// [`bind_ephemeral`] for the memcache cache persona.
pub fn bind_ephemeral_memcache(cache: Arc<CacheMap>, config: ServerConfig) -> DlhtServer {
    retry_bind(
        || DlhtServer::bind_memcache("127.0.0.1:0", cache.clone(), config.clone()),
        "memcache server",
    )
}
