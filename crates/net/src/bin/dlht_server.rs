//! Standalone `dlht-net` server: a sharded DLHT serving the wire protocol
//! over TCP until the process is terminated.
//!
//! ```text
//! dlht_server [--addr 127.0.0.1:4455] [--shards 4] [--capacity 1000000]
//!             [--keys N] [--workers W] [--admin-addr 127.0.0.1:4456]
//! dlht_server --probe <admin-addr>
//! ```
//!
//! `--keys N` prepopulates keys `0..N` (value = key), matching the workload
//! harness's `dlht_workloads::prepopulate` convention so a remote YCSB run
//! finds the key space it expects.
//!
//! `--workers W` sizes the event-loop worker pool (0 = auto). `--admin-addr`
//! opens the admin plane — a separate port serving only `STATS`/`LEN`/`PING`
//! so health checks never queue behind data traffic.
//!
//! `--probe <addr>` runs as an admin-plane health probe instead of a
//! server: it connects, round-trips `PING`, `STATS`, and `LEN`, prints one
//! summary line, and exits 0 on success / 1 on any failure — made for CI
//! and liveness checks.

use dlht_core::{KvBackend, ShardedTable};
use dlht_net::{flag_value, DlhtClient, DlhtServer, ServerConfig};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(addr) = flag_value(&args, "--probe") {
        std::process::exit(probe(&addr));
    }

    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:4455".to_string());
    let shards: usize = flag_value(&args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let capacity: usize = flag_value(&args, "--capacity")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let keys: u64 = flag_value(&args, "--keys")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let workers: usize = flag_value(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let admin_addr = flag_value(&args, "--admin-addr");

    let table = Arc::new(ShardedTable::with_capacity(shards, capacity));
    for k in 0..keys {
        let _ = table
            .insert(k, k)
            .unwrap_or_else(|e| panic!("prepopulating key {k}: {e}"));
    }
    let config = ServerConfig {
        workers,
        admin_addr,
        ..ServerConfig::default()
    };
    let server = DlhtServer::bind_with(&addr, table.clone(), config)
        .unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    eprintln!(
        "dlht_server listening on {} ({} workers, {} shards, capacity {}, {} prepopulated keys{})",
        server.local_addr(),
        server.workers(),
        table.num_shards(),
        capacity,
        keys,
        match server.admin_addr() {
            Some(a) => format!(", admin plane on {a}"),
            None => String::new(),
        }
    );
    // Serve until the process is terminated; print a counter line every few
    // seconds so an operator sees traffic.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        let c = server.counters();
        eprintln!(
            "connections={} active={} ops={} batches={} protocol_errors={} panics={} \
             admin_frames={} buffer_bytes={} keys={}",
            c.connections,
            c.active,
            c.ops,
            c.batches,
            c.protocol_errors,
            c.panics,
            c.admin_frames,
            server.buffer_bytes(),
            table.len()
        );
    }
}

/// Health-probe mode: exercise the admin plane (works against the data
/// plane too, which serves a superset) and report in one line.
fn probe(addr: &str) -> i32 {
    let started = std::time::Instant::now();
    let mut client = match DlhtClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("probe: cannot connect {addr}: {e}");
            return 1;
        }
    };
    if let Err(e) = client.ping() {
        eprintln!("probe: PING failed: {e}");
        return 1;
    }
    let stats = match client.stats() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("probe: STATS failed: {e}");
            return 1;
        }
    };
    let len = match client.server_len() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("probe: LEN failed: {e}");
            return 1;
        }
    };
    println!(
        "probe ok: {addr} answered PING/STATS/LEN in {:?} (len={len}, occupied_slots={})",
        started.elapsed(),
        stats.table.occupied_slots
    );
    0
}
