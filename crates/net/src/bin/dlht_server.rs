//! Standalone `dlht-net` server: a sharded DLHT serving the wire protocol
//! over TCP until the process is terminated.
//!
//! ```text
//! dlht_server [--addr 127.0.0.1:4455] [--shards 4] [--capacity 1000000]
//!             [--keys N] [--workers W] [--admin-addr 127.0.0.1:4456]
//!             [--protocol binary|memcache] [--memory-budget BYTES[k|m|g]]
//!             [--reap-ms MS] [--trace-slow-us US]
//! dlht_server --probe <admin-addr> [--expect-cache]
//!             [--expect-metric name[>=N]]...
//! dlht_server --probe-memcache <addr>
//! ```
//!
//! `--keys N` prepopulates keys `0..N` (value = key), matching the workload
//! harness's `dlht_workloads::prepopulate` convention so a remote YCSB run
//! finds the key space it expects (binary protocol only).
//!
//! `--workers W` sizes the event-loop worker pool (0 = auto). `--admin-addr`
//! opens the admin plane — a separate port serving only `STATS`/`LEN`/`PING`
//! so health checks never queue behind data traffic.
//!
//! `--protocol memcache` serves the cache persona instead: the memcache
//! text protocol over a [`dlht_core::CacheMap`] with per-entry TTL, a
//! background expiry reaper (`--reap-ms`, default 500), and LRU eviction
//! under `--memory-budget` (0 = unbounded; accepts `k`/`m`/`g` suffixes).
//!
//! `--trace-slow-us US` arms the per-worker slow-op trace ring: every
//! request at least `US` microseconds slow (0 = every request) is captured
//! and served at `GET /trace` on the admin plane.
//!
//! `--probe <addr>` runs as an admin-plane health probe instead of a
//! server: it connects, round-trips `PING`, `STATS`, and `LEN`, prints one
//! summary line, and exits 0 on success / 1 on any failure — made for CI
//! and liveness checks. With `--expect-cache` the probe additionally fails
//! unless the `STATS` answer carries the cache extension (expirations /
//! evictions / hit counters). Each `--expect-metric name[>=N]` (repeatable)
//! additionally scrapes `GET /metrics` over HTTP from the same port,
//! parses the Prometheus text, and fails unless the named family is
//! present (summed across label sets) with at least `N` where given —
//! histogram families are checked via their `_count`/`_sum` series.
//! `--probe-memcache <addr>` speaks the text protocol natively instead:
//! set/get/touch/incr/delete/stats round-trip.

use dlht_core::{CacheConfig, CacheMap, EvictionPolicy, KvBackend, ShardedTable};
use dlht_net::{flag_value, DlhtClient, DlhtServer, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(addr) = flag_value(&args, "--probe") {
        let expect_cache = args.iter().any(|a| a == "--expect-cache");
        let expects = expect_metric_specs(&args);
        std::process::exit(probe(&addr, expect_cache, &expects));
    }
    if let Some(addr) = flag_value(&args, "--probe-memcache") {
        std::process::exit(probe_memcache(&addr));
    }

    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:4455".to_string());
    let shards: usize = flag_value(&args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let capacity: usize = flag_value(&args, "--capacity")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let keys: u64 = flag_value(&args, "--keys")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let workers: usize = flag_value(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let admin_addr = flag_value(&args, "--admin-addr");
    let protocol = flag_value(&args, "--protocol").unwrap_or_else(|| "binary".to_string());
    let memory_budget = flag_value(&args, "--memory-budget")
        .map(|v| parse_bytes(&v).unwrap_or_else(|| panic!("bad --memory-budget value {v:?}")))
        .unwrap_or(0);
    let reap_ms: u64 = flag_value(&args, "--reap-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let trace_slow_us: Option<u64> = flag_value(&args, "--trace-slow-us").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("bad --trace-slow-us value {v:?}"))
    });

    let config = ServerConfig {
        workers,
        admin_addr,
        reap_interval_ms: reap_ms,
        trace_slow_us,
        ..ServerConfig::default()
    };

    match protocol.as_str() {
        "binary" => serve_binary(&addr, shards, capacity, keys, config),
        "memcache" => serve_memcache(&addr, shards, capacity, memory_budget, config),
        other => {
            eprintln!("unknown --protocol {other:?} (expected binary or memcache)");
            std::process::exit(2);
        }
    }
}

/// Parse a byte count with an optional `k`/`m`/`g` suffix (powers of 1024).
fn parse_bytes(text: &str) -> Option<u64> {
    let lower = text.to_ascii_lowercase();
    let (digits, shift) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(d) if lower.ends_with('k') => (d, 10),
        Some(d) if lower.ends_with('m') => (d, 20),
        Some(d) => (d, 30),
        None => (lower.as_str(), 0),
    };
    let base: u64 = digits.parse().ok()?;
    base.checked_shl(shift)
}

fn serve_binary(addr: &str, shards: usize, capacity: usize, keys: u64, config: ServerConfig) {
    let table = Arc::new(ShardedTable::with_capacity(shards, capacity));
    for k in 0..keys {
        let _ = table
            .insert(k, k)
            .unwrap_or_else(|e| panic!("prepopulating key {k}: {e}"));
    }
    let server = DlhtServer::bind_with(addr, table.clone(), config)
        .unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    eprintln!(
        "dlht_server listening on {} ({} workers, {} shards, capacity {}, {} prepopulated keys{})",
        server.local_addr(),
        server.workers(),
        table.num_shards(),
        capacity,
        keys,
        match server.admin_addr() {
            Some(a) => format!(", admin plane on {a}"),
            None => String::new(),
        }
    );
    // Serve until the process is terminated; print a counter line every few
    // seconds so an operator sees traffic.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        let c = server.counters();
        eprintln!(
            "connections={} active={} ops={} batches={} protocol_errors={} panics={} \
             admin_frames={} buffer_bytes={} keys={}",
            c.connections,
            c.active,
            c.ops,
            c.batches,
            c.protocol_errors,
            c.panics,
            c.admin_frames,
            server.buffer_bytes(),
            table.len()
        );
    }
}

fn serve_memcache(addr: &str, shards: usize, capacity: usize, budget: u64, config: ServerConfig) {
    let cache = Arc::new(CacheMap::new(CacheConfig {
        shards,
        capacity,
        memory_budget: budget,
        eviction: EvictionPolicy::Lru,
    }));
    let server = DlhtServer::bind_memcache(addr, cache.clone(), config)
        .unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    eprintln!(
        "dlht_server (memcache persona) listening on {} ({} workers, {} shards, capacity {}, \
         memory budget {}{})",
        server.local_addr(),
        server.workers(),
        shards,
        capacity,
        if budget == 0 {
            "unbounded".to_string()
        } else {
            format!("{budget} B")
        },
        match server.admin_addr() {
            Some(a) => format!(", admin plane on {a}"),
            None => String::new(),
        }
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        let c = server.counters();
        let s = cache.stats();
        eprintln!(
            "connections={} active={} lines={} protocol_errors={} items={} bytes={} \
             hits={} misses={} expired={} evicted={}",
            c.connections,
            c.active,
            c.frames,
            c.protocol_errors,
            s.items,
            s.value_bytes,
            s.hits,
            s.misses,
            s.expired,
            s.evicted
        );
    }
}

/// Collect every `--expect-metric name[>=N]` occurrence ([`flag_value`]
/// only returns the first one).
fn expect_metric_specs(args: &[String]) -> Vec<(String, Option<f64>)> {
    let mut specs = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg != "--expect-metric" {
            continue;
        }
        let Some(spec) = iter.next() else {
            eprintln!("--expect-metric needs a value: name or name>=N");
            std::process::exit(2);
        };
        match spec.split_once(">=") {
            None => specs.push((spec.clone(), None)),
            Some((name, min)) => match min.parse::<f64>() {
                Ok(min) => specs.push((name.to_string(), Some(min))),
                Err(_) => {
                    eprintln!("bad --expect-metric threshold in {spec:?}");
                    std::process::exit(2);
                }
            },
        }
    }
    specs
}

/// Scrape `GET /metrics` over HTTP from the admin plane and parse the
/// Prometheus text exposition.
fn scrape_metrics(addr: &str) -> Result<Vec<dlht_obs::PromSample>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("send scrape: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read scrape: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response: {response:?}"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("scrape answered {status:?}"));
    }
    dlht_obs::parse_prometheus(body).map_err(|e| format!("unparseable exposition: {e}"))
}

/// Check every `--expect-metric` spec against one scrape; returns the
/// number of failed expectations (each reported on stderr).
fn check_metrics(addr: &str, expects: &[(String, Option<f64>)]) -> usize {
    let samples = match scrape_metrics(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("probe: metrics scrape failed: {e}");
            return expects.len();
        }
    };
    let mut failed = 0;
    for (name, min) in expects {
        match (dlht_obs::sum_samples(&samples, name), min) {
            (None, _) => {
                eprintln!("probe: metric {name} absent from /metrics");
                failed += 1;
            }
            (Some(total), Some(min)) if total < *min => {
                eprintln!("probe: metric {name} = {total}, wanted >= {min}");
                failed += 1;
            }
            _ => {}
        }
    }
    failed
}

/// Health-probe mode: exercise the admin plane (works against the data
/// plane too, which serves a superset) and report in one line.
fn probe(addr: &str, expect_cache: bool, expects: &[(String, Option<f64>)]) -> i32 {
    let started = std::time::Instant::now();
    let mut client = match DlhtClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("probe: cannot connect {addr}: {e}");
            return 1;
        }
    };
    if let Err(e) = client.ping() {
        eprintln!("probe: PING failed: {e}");
        return 1;
    }
    let stats = match client.stats() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("probe: STATS failed: {e}");
            return 1;
        }
    };
    let len = match client.server_len() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("probe: LEN failed: {e}");
            return 1;
        }
    };
    let cache_suffix = match (&stats.cache, expect_cache) {
        (None, true) => {
            eprintln!("probe: expected the cache STATS extension, got a plain kv answer");
            return 1;
        }
        (Some(c), _) => format!(
            ", cache: items={} hits={} misses={} expirations={} evictions={}",
            c.items, c.hits, c.misses, c.expirations, c.evictions
        ),
        (None, false) => String::new(),
    };
    let metric_suffix = if expects.is_empty() {
        String::new()
    } else {
        if check_metrics(addr, expects) > 0 {
            return 1;
        }
        format!(", {} metric expectation(s) met", expects.len())
    };
    println!(
        "probe ok: {addr} answered PING/STATS/LEN in {:?} (len={len}, occupied_slots={}{}{})",
        started.elapsed(),
        stats.table.occupied_slots,
        cache_suffix,
        metric_suffix
    );
    0
}

/// Native memcache text-protocol probe: a full set/get/touch/incr/delete/
/// stats round-trip with a stock-client dialogue, for CI smoke jobs.
fn probe_memcache(addr: &str) -> i32 {
    match memcache_roundtrip(addr) {
        Ok(summary) => {
            println!("memcache probe ok: {addr} {summary}");
            0
        }
        Err(e) => {
            eprintln!("memcache probe failed: {e}");
            1
        }
    }
}

fn memcache_roundtrip(addr: &str) -> Result<String, String> {
    let started = std::time::Instant::now();
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut write = stream;
    let mut line = String::new();
    let mut expect = |w: &mut TcpStream,
                      r: &mut BufReader<TcpStream>,
                      send: &str,
                      want: &str|
     -> Result<(), String> {
        w.write_all(send.as_bytes())
            .map_err(|e| format!("write: {e}"))?;
        line.clear();
        r.read_line(&mut line).map_err(|e| format!("read: {e}"))?;
        if line.trim_end() != want {
            return Err(format!("sent {send:?}, wanted {want:?}, got {line:?}"));
        }
        Ok(())
    };
    expect(
        &mut write,
        &mut reader,
        "set probe:key 7 0 5\r\nhello\r\n",
        "STORED",
    )?;
    expect(
        &mut write,
        &mut reader,
        "get probe:key\r\n",
        "VALUE probe:key 7 5",
    )?;
    // Swallow the data block + END of the get.
    let mut rest = String::new();
    reader.read_line(&mut rest).map_err(|e| e.to_string())?; // hello
    rest.clear();
    reader.read_line(&mut rest).map_err(|e| e.to_string())?; // END
    if rest.trim_end() != "END" {
        return Err(format!("get: missing END, got {rest:?}"));
    }
    expect(&mut write, &mut reader, "touch probe:key 60\r\n", "TOUCHED")?;
    expect(
        &mut write,
        &mut reader,
        "set probe:n 0 0 1\r\n5\r\n",
        "STORED",
    )?;
    expect(&mut write, &mut reader, "incr probe:n 10\r\n", "15")?;
    expect(&mut write, &mut reader, "delete probe:key\r\n", "DELETED")?;
    expect(&mut write, &mut reader, "get probe:key\r\n", "END")?;
    // stats must include the eviction/expiry counters and end with END.
    write
        .write_all(b"stats\r\n")
        .map_err(|e| format!("write stats: {e}"))?;
    let mut saw_evictions = false;
    let mut saw_expired = false;
    loop {
        let mut stat = String::new();
        reader.read_line(&mut stat).map_err(|e| e.to_string())?;
        let stat = stat.trim_end();
        if stat == "END" {
            break;
        }
        saw_evictions |= stat.starts_with("STAT evictions ");
        saw_expired |= stat.starts_with("STAT expired ");
        if stat.is_empty() {
            return Err("stats: connection closed before END".to_string());
        }
    }
    if !(saw_evictions && saw_expired) {
        return Err("stats: missing evictions/expired counters".to_string());
    }
    Ok(format!(
        "set/get/touch/incr/delete/stats round-trip in {:?}",
        started.elapsed()
    ))
}
