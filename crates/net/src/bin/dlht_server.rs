//! Standalone `dlht-net` server: a sharded DLHT serving the wire protocol
//! over TCP until the process is terminated.
//!
//! ```text
//! dlht_server [--addr 127.0.0.1:4455] [--shards 4] [--capacity 1000000]
//!             [--keys N]
//! ```
//!
//! `--keys N` prepopulates keys `0..N` (value = key), matching the workload
//! harness's `dlht_workloads::prepopulate` convention so a remote YCSB run
//! finds the key space it expects.

use dlht_core::{KvBackend, ShardedTable};
use dlht_net::{flag_value, DlhtServer};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:4455".to_string());
    let shards: usize = flag_value(&args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let capacity: usize = flag_value(&args, "--capacity")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let keys: u64 = flag_value(&args, "--keys")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let table = Arc::new(ShardedTable::with_capacity(shards, capacity));
    for k in 0..keys {
        let _ = table
            .insert(k, k)
            .unwrap_or_else(|e| panic!("prepopulating key {k}: {e}"));
    }
    let server = DlhtServer::bind(&addr, table.clone())
        .unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    eprintln!(
        "dlht_server listening on {} ({} shards, capacity {}, {} prepopulated keys)",
        server.local_addr(),
        table.num_shards(),
        capacity,
        keys
    );
    // Serve until the process is terminated; print a counter line every few
    // seconds so an operator sees traffic.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        let c = server.counters();
        eprintln!(
            "connections={} active={} ops={} batches={} protocol_errors={} keys={}",
            c.connections,
            c.active,
            c.ops,
            c.batches,
            c.protocol_errors,
            table.len()
        );
    }
}
