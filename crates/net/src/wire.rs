//! The `dlht-net` wire protocol: dependency-free, length-prefixed binary
//! frames that decode zero-copy into the [`Request`]/[`Response`] vocabulary
//! of `dlht-core`.
//!
//! ## Framing
//!
//! Every frame — request or response — carries the same fixed 8-byte header
//! followed by an opcode-specific payload (all integers little-endian):
//!
//! ```text
//! byte 0    : magic (0xD1)
//! byte 1    : protocol version (1)
//! byte 2    : opcode
//! byte 3    : reserved (must be 0 in version 1)
//! bytes 4..8: payload length (u32 LE, capped at MAX_PAYLOAD)
//! ```
//!
//! The magic byte makes desynchronized or non-protocol bytes fail fast; the
//! version byte lets a future frame layout coexist on the same port.
//! Decoding is incremental: [`decode_frame`] returns `Ok(None)` while a frame
//! is still incomplete (read more bytes) and `Err` only for frames that can
//! never become valid (bad magic/version/opcode, oversized or malformed
//! payload) — a decoder must never panic on attacker-controlled input.
//!
//! ## Request opcodes
//!
//! | opcode | payload | meaning |
//! |---|---|---|
//! | `GET` | key u64 | [`Request::Get`] |
//! | `PUT` | key u64, value u64 | [`Request::Put`] |
//! | `INSERT` | key u64, value u64 | [`Request::Insert`] |
//! | `DELETE` | key u64 | [`Request::Delete`] |
//! | `BATCH` | policy u8, count u32, then `count` packed requests | one [`dlht_core::Batch`] under an explicit [`BatchPolicy`] |
//! | `STATS` | empty | typed [`RemoteStats`] snapshot |
//! | `LEN` | empty | live-key count |
//! | `PING` | arbitrary (echoed) | liveness / handshake |
//!
//! Plain request frames need no batch envelope: a client that pipelines
//! several of them in one write gets them drained into **one** server-side
//! batch (wire pipelining ≙ prefetch pipeline depth) and receives one
//! `RESP` frame per request, in submission order.
//!
//! ## Response opcodes
//!
//! `RESP` (one encoded [`Response`]), `RESP_BATCH` (count + encoded
//! responses in submission-slot order), `RESP_STATS`, `RESP_LEN`, `PONG`,
//! and `ERR` (error code + UTF-8 message; the server closes the connection
//! after sending it).

use dlht_core::{BatchPolicy, DlhtError, InsertOutcome, Request, Response, TableStats};

/// First byte of every frame.
pub const MAGIC: u8 = 0xD1;
/// Wire protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed frame header length in bytes.
pub const HEADER_LEN: usize = 8;
/// Maximum payload length a peer may send; longer frames are a protocol
/// error (the length prefix is attacker-controlled — never trust it with an
/// allocation).
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Request opcodes.
pub mod op {
    /// `Get(key)`.
    pub const GET: u8 = 0x01;
    /// `Put(key, value)`.
    pub const PUT: u8 = 0x02;
    /// `Insert(key, value)`.
    pub const INSERT: u8 = 0x03;
    /// `Delete(key)`.
    pub const DELETE: u8 = 0x04;
    /// Explicit batch with a [`super::BatchPolicy`].
    pub const BATCH: u8 = 0x05;
    /// Typed statistics snapshot.
    pub const STATS: u8 = 0x06;
    /// Live-key count.
    pub const LEN: u8 = 0x07;
    /// Echo (liveness probe).
    pub const PING: u8 = 0x08;
}

/// Response opcodes (high bit set).
pub mod resp {
    /// One encoded `Response`.
    pub const RESP: u8 = 0x81;
    /// `count` encoded `Response`s in submission-slot order.
    pub const RESP_BATCH: u8 = 0x85;
    /// Typed statistics payload.
    pub const RESP_STATS: u8 = 0x86;
    /// Live-key count (u64).
    pub const RESP_LEN: u8 = 0x87;
    /// Echoed `PING` payload.
    pub const PONG: u8 = 0x88;
    /// Protocol error: code u8 + UTF-8 message; the connection closes.
    pub const ERR: u8 = 0xFF;
}

/// A decode-side protocol violation. Every variant is terminal for the
/// connection that produced it: the server answers with an [`resp::ERR`]
/// frame and closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// First byte of a frame was not [`MAGIC`].
    BadMagic(u8),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Reserved header byte was nonzero.
    BadReserved(u8),
    /// Opcode not defined in this protocol version.
    UnknownOpcode(u8),
    /// Payload length above [`MAX_PAYLOAD`].
    Oversized(usize),
    /// Payload length inconsistent with the opcode's layout.
    BadPayload { opcode: u8, len: usize },
    /// A `BATCH` payload whose contents disagree with its count.
    BadBatch,
    /// Unknown [`BatchPolicy`] discriminant.
    BadPolicy(u8),
    /// Unknown response tag.
    BadResponseTag(u8),
    /// Unknown [`DlhtError`] code.
    BadErrorCode(u8),
    /// A data opcode sent to the admin plane (which serves only
    /// `STATS`/`LEN`/`PING` — see `crate::server`).
    AdminRestricted(u8),
}

impl WireError {
    /// Stable error code carried in [`resp::ERR`] frames.
    pub fn code(&self) -> u8 {
        match self {
            WireError::BadMagic(_) => 1,
            WireError::BadVersion(_) => 2,
            WireError::BadReserved(_) => 3,
            WireError::UnknownOpcode(_) => 4,
            WireError::Oversized(_) => 5,
            WireError::BadPayload { .. } => 6,
            WireError::BadBatch => 7,
            WireError::BadPolicy(_) => 8,
            WireError::BadResponseTag(_) => 9,
            WireError::BadErrorCode(_) => 10,
            WireError::AdminRestricted(_) => 11,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(b) => write!(f, "bad frame magic {b:#04x} (expected {MAGIC:#04x})"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadReserved(b) => write!(f, "reserved header byte must be 0, got {b:#04x}"),
            WireError::UnknownOpcode(o) => write!(f, "unknown opcode {o:#04x}"),
            WireError::Oversized(n) => write!(f, "payload of {n} bytes exceeds {MAX_PAYLOAD}"),
            WireError::BadPayload { opcode, len } => {
                write!(
                    f,
                    "payload of {len} bytes is invalid for opcode {opcode:#04x}"
                )
            }
            WireError::BadBatch => write!(f, "batch payload disagrees with its request count"),
            WireError::BadPolicy(p) => write!(f, "unknown batch policy {p}"),
            WireError::BadResponseTag(t) => write!(f, "unknown response tag {t}"),
            WireError::BadErrorCode(c) => write!(f, "unknown table error code {c}"),
            WireError::AdminRestricted(o) => write!(
                f,
                "opcode {o:#04x} is a data operation; the admin port serves only STATS/LEN/PING"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded frame borrowing its payload from the receive buffer
/// (zero-copy; see [`decode_frame`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// The frame's opcode (request or response).
    pub opcode: u8,
    /// The opcode-specific payload bytes.
    pub payload: &'a [u8],
}

/// Append a frame header for `opcode` with `payload_len` payload bytes.
///
/// The caller appends the payload right after.
///
/// # Panics
///
/// If `payload_len` exceeds [`MAX_PAYLOAD`] — silently emitting a frame
/// every conforming peer must reject would fail far from the bug, so the
/// check holds in release builds too. The crate's own encoders stay under
/// the cap by construction ([`DlhtClient::execute`](crate::DlhtClient)
/// splits large batches); direct [`encode_batch`] callers must keep
/// `5 + 17 × requests` within the cap themselves.
pub fn put_header(buf: &mut Vec<u8>, opcode: u8, payload_len: usize) {
    assert!(
        payload_len <= MAX_PAYLOAD,
        "frame payload of {payload_len} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
    );
    buf.push(MAGIC);
    buf.push(VERSION);
    buf.push(opcode);
    buf.push(0);
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Try to decode one frame from the front of `buf`.
///
/// * `Ok(Some((frame, consumed)))` — a complete frame; the caller advances
///   its buffer by `consumed` bytes. The frame's payload borrows from `buf`.
/// * `Ok(None)` — the frame at the front is not complete yet; read more.
/// * `Err(_)` — the stream is not (or no longer) speaking this protocol;
///   the connection must close.
// HOT: decodes attacker-controlled bytes on the server read loop — must
// not panic, whatever arrives.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame<'_>, usize)>, WireError> {
    // Validate the header bytes that have arrived so far, so garbage fails
    // immediately instead of waiting for 8 bytes of it.
    match buf.first() {
        None => return Ok(None),
        Some(&m) if m != MAGIC => return Err(WireError::BadMagic(m)),
        Some(_) => {}
    }
    if let Some(&v) = buf.get(1) {
        if v != VERSION {
            return Err(WireError::BadVersion(v));
        }
    }
    if let Some(&r) = buf.get(3) {
        if r != 0 {
            return Err(WireError::BadReserved(r));
        }
    }
    let Some((header, rest)) = buf.split_first_chunk::<HEADER_LEN>() else {
        return Ok(None);
    };
    let [_, _, opcode, _, l0, l1, l2, l3] = *header;
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    match rest.get(..len) {
        Some(payload) => Ok(Some((Frame { opcode, payload }, HEADER_LEN + len))),
        None => Ok(None),
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

// HOT: shared word reader on the decode path — must not panic.
fn read_u64(bytes: &[u8]) -> Option<u64> {
    bytes.first_chunk::<8>().map(|c| u64::from_le_bytes(*c))
}

/// Encode one plain request frame (`GET`/`PUT`/`INSERT`/`DELETE`).
pub fn encode_request(buf: &mut Vec<u8>, req: Request) {
    let (opcode, len) = match req {
        Request::Get(_) | Request::Delete(_) => (request_opcode(req), 8),
        Request::Put(..) | Request::Insert(..) => (request_opcode(req), 16),
    };
    put_header(buf, opcode, len);
    buf.extend_from_slice(&req.key().to_le_bytes());
    if let Some(v) = req.value() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// The plain-frame opcode for `req`.
pub fn request_opcode(req: Request) -> u8 {
    match req {
        Request::Get(_) => op::GET,
        Request::Put(..) => op::PUT,
        Request::Insert(..) => op::INSERT,
        Request::Delete(_) => op::DELETE,
    }
}

/// Decode the payload of a plain request frame.
// HOT: decodes attacker-controlled bytes — must not panic.
pub fn decode_request(opcode: u8, payload: &[u8]) -> Result<Request, WireError> {
    let bad = || WireError::BadPayload {
        opcode,
        len: payload.len(),
    };
    match opcode {
        op::GET | op::DELETE => {
            if payload.len() != 8 {
                return Err(bad());
            }
            let k = read_u64(payload).ok_or_else(bad)?;
            Ok(if opcode == op::GET {
                Request::Get(k)
            } else {
                Request::Delete(k)
            })
        }
        op::PUT | op::INSERT => {
            if payload.len() != 16 {
                return Err(bad());
            }
            let (key_bytes, value_bytes) = payload.split_at_checked(8).ok_or_else(bad)?;
            let k = read_u64(key_bytes).ok_or_else(bad)?;
            let v = read_u64(value_bytes).ok_or_else(bad)?;
            Ok(if opcode == op::PUT {
                Request::Put(k, v)
            } else {
                Request::Insert(k, v)
            })
        }
        other => Err(WireError::UnknownOpcode(other)),
    }
}

/// Wire discriminant of a [`BatchPolicy`].
pub fn policy_code(policy: BatchPolicy) -> u8 {
    match policy {
        BatchPolicy::RunAll => 0,
        BatchPolicy::StopOnFailure => 1,
        BatchPolicy::Unordered => 2,
    }
}

/// Inverse of [`policy_code`].
pub fn decode_policy(code: u8) -> Result<BatchPolicy, WireError> {
    match code {
        0 => Ok(BatchPolicy::RunAll),
        1 => Ok(BatchPolicy::StopOnFailure),
        2 => Ok(BatchPolicy::Unordered),
        other => Err(WireError::BadPolicy(other)),
    }
}

/// Encode an explicit `BATCH` frame: `policy`, then `reqs` packed as
/// `(op u8, key u64[, value u64])` items.
pub fn encode_batch(buf: &mut Vec<u8>, reqs: &[Request], policy: BatchPolicy) {
    let body: usize = 5 + reqs
        .iter()
        .map(|r| if r.value().is_some() { 17 } else { 9 })
        .sum::<usize>();
    put_header(buf, op::BATCH, body);
    buf.push(policy_code(policy));
    buf.extend_from_slice(&(reqs.len() as u32).to_le_bytes());
    for req in reqs {
        buf.push(request_opcode(*req));
        buf.extend_from_slice(&req.key().to_le_bytes());
        if let Some(v) = req.value() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Decode a `BATCH` payload header, returning the policy, the declared
/// request count, and the packed items for [`BatchIter`].
// HOT: decodes attacker-controlled bytes — must not panic.
pub fn decode_batch_header(payload: &[u8]) -> Result<(BatchPolicy, u32, &[u8]), WireError> {
    let Some((&policy_byte, rest)) = payload.split_first() else {
        return Err(WireError::BadBatch);
    };
    let policy = decode_policy(policy_byte)?;
    let Some((count_bytes, items)) = rest.split_first_chunk::<4>() else {
        return Err(WireError::BadBatch);
    };
    Ok((policy, u32::from_le_bytes(*count_bytes), items))
}

/// Zero-copy iterator over the packed requests of a `BATCH` payload.
///
/// Yields `Err` (and then stops) if an item is malformed; after `count`
/// items the remaining bytes must be empty or the batch is malformed —
/// validated by [`BatchIter::finish`].
pub struct BatchIter<'a> {
    items: &'a [u8],
    remaining: u32,
    poisoned: bool,
}

impl<'a> BatchIter<'a> {
    /// Iterate the `items` section of a batch payload (from
    /// [`decode_batch_header`]).
    pub fn new(items: &'a [u8], count: u32) -> Self {
        BatchIter {
            items,
            remaining: count,
            poisoned: false,
        }
    }

    /// Stop iteration and make [`BatchIter::finish`] report the batch as
    /// malformed.
    fn poison(&mut self, err: WireError) -> Option<Result<Request, WireError>> {
        self.items = &[];
        self.remaining = 0;
        self.poisoned = true;
        Some(Err(err))
    }

    /// Validate that the payload held exactly `count` well-formed items.
    pub fn finish(self) -> Result<(), WireError> {
        if !self.poisoned && self.remaining == 0 && self.items.is_empty() {
            Ok(())
        } else {
            Err(WireError::BadBatch)
        }
    }
}

impl Iterator for BatchIter<'_> {
    type Item = Result<Request, WireError>;

    // HOT: per-item decode of attacker-controlled bytes — must not panic.
    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        // The declared count promises another item; an exhausted payload is
        // a malformed batch, not a clean end (count > items).
        let Some((&opcode, after_op)) = self.items.split_first() else {
            return self.poison(WireError::BadBatch);
        };
        self.remaining -= 1;
        let body_len = match opcode {
            op::GET | op::DELETE => 8,
            op::PUT | op::INSERT => 16,
            other => return self.poison(WireError::UnknownOpcode(other)),
        };
        let Some((body, rest)) = after_op.split_at_checked(body_len) else {
            return self.poison(WireError::BadBatch);
        };
        let req = decode_request(opcode, body);
        self.items = rest;
        Some(req)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

const TAG_VALUE_NONE: u8 = 0;
const TAG_VALUE_SOME: u8 = 1;
const TAG_UPDATED_NONE: u8 = 2;
const TAG_UPDATED_SOME: u8 = 3;
const TAG_INSERTED: u8 = 4;
const TAG_EXISTS: u8 = 5;
const TAG_INSERT_ERR: u8 = 6;
const TAG_DELETED_NONE: u8 = 7;
const TAG_DELETED_SOME: u8 = 8;
const TAG_SKIPPED: u8 = 9;

/// Stable wire code of a [`DlhtError`].
pub fn error_code(err: DlhtError) -> u8 {
    match err {
        DlhtError::ReservedKey => 1,
        DlhtError::TableFull => 2,
        DlhtError::KeyTooLong => 3,
        DlhtError::InvalidNamespace => 4,
        DlhtError::UnsupportedInMode => 5,
    }
}

/// Inverse of [`error_code`].
pub fn decode_error(code: u8) -> Result<DlhtError, WireError> {
    match code {
        1 => Ok(DlhtError::ReservedKey),
        2 => Ok(DlhtError::TableFull),
        3 => Ok(DlhtError::KeyTooLong),
        4 => Ok(DlhtError::InvalidNamespace),
        5 => Ok(DlhtError::UnsupportedInMode),
        other => Err(WireError::BadErrorCode(other)),
    }
}

/// Append one encoded [`Response`] body (tag byte + optional word) —
/// the unit `RESP` and `RESP_BATCH` payloads are built from.
pub fn encode_response_body(buf: &mut Vec<u8>, resp: Response) {
    let (tag, word) = match resp {
        Response::Value(None) => (TAG_VALUE_NONE, None),
        Response::Value(Some(v)) => (TAG_VALUE_SOME, Some(v)),
        Response::Updated(None) => (TAG_UPDATED_NONE, None),
        Response::Updated(Some(v)) => (TAG_UPDATED_SOME, Some(v)),
        Response::Inserted(Ok(InsertOutcome::Inserted)) => (TAG_INSERTED, None),
        Response::Inserted(Ok(InsertOutcome::AlreadyExists(v))) => (TAG_EXISTS, Some(v)),
        Response::Inserted(Err(e)) => {
            buf.push(TAG_INSERT_ERR);
            buf.push(error_code(e));
            return;
        }
        Response::Deleted(None) => (TAG_DELETED_NONE, None),
        Response::Deleted(Some(v)) => (TAG_DELETED_SOME, Some(v)),
        Response::Skipped => (TAG_SKIPPED, None),
    };
    buf.push(tag);
    if let Some(v) = word {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decode one response body from the front of `bytes`, returning the
/// response and how many bytes it occupied.
// HOT: decodes server-controlled bytes on the client poll loop — must not
// panic.
pub fn decode_response_body(bytes: &[u8]) -> Result<(Response, usize), WireError> {
    let tag = *bytes.first().ok_or(WireError::BadResponseTag(0xFF))?;
    let word = |resp: fn(u64) -> Response| -> Result<(Response, usize), WireError> {
        match bytes.get(1..).and_then(read_u64) {
            Some(v) => Ok((resp(v), 9)),
            None => Err(WireError::BadPayload {
                opcode: resp::RESP,
                len: bytes.len(),
            }),
        }
    };
    match tag {
        TAG_VALUE_NONE => Ok((Response::Value(None), 1)),
        TAG_VALUE_SOME => word(|v| Response::Value(Some(v))),
        TAG_UPDATED_NONE => Ok((Response::Updated(None), 1)),
        TAG_UPDATED_SOME => word(|v| Response::Updated(Some(v))),
        TAG_INSERTED => Ok((Response::Inserted(Ok(InsertOutcome::Inserted)), 1)),
        TAG_EXISTS => word(|v| Response::Inserted(Ok(InsertOutcome::AlreadyExists(v)))),
        TAG_INSERT_ERR => {
            let code = *bytes.get(1).ok_or(WireError::BadPayload {
                opcode: resp::RESP,
                len: bytes.len(),
            })?;
            Ok((Response::Inserted(Err(decode_error(code)?)), 2))
        }
        TAG_DELETED_NONE => Ok((Response::Deleted(None), 1)),
        TAG_DELETED_SOME => word(|v| Response::Deleted(Some(v))),
        TAG_SKIPPED => Ok((Response::Skipped, 1)),
        other => Err(WireError::BadResponseTag(other)),
    }
}

/// Encoded length of one response body (tag + optional word / error code).
pub fn response_body_len(resp: Response) -> usize {
    match resp {
        Response::Value(Some(_))
        | Response::Updated(Some(_))
        | Response::Inserted(Ok(InsertOutcome::AlreadyExists(_)))
        | Response::Deleted(Some(_)) => 9,
        Response::Inserted(Err(_)) => 2,
        _ => 1,
    }
}

/// Encode one `RESP` frame.
pub fn encode_response(buf: &mut Vec<u8>, resp: Response) {
    put_header(buf, resp::RESP, response_body_len(resp));
    encode_response_body(buf, resp);
}

/// Decode a `RESP` payload (exactly one response body).
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let (r, used) = decode_response_body(payload)?;
    if used != payload.len() {
        return Err(WireError::BadPayload {
            opcode: resp::RESP,
            len: payload.len(),
        });
    }
    Ok(r)
}

/// Encode a `RESP_BATCH` frame: count, then one response body per
/// submission slot.
pub fn encode_batch_responses(buf: &mut Vec<u8>, resps: &[Response]) {
    let body: usize = 4 + resps.iter().map(|r| response_body_len(*r)).sum::<usize>();
    put_header(buf, resp::RESP_BATCH, body);
    buf.extend_from_slice(&(resps.len() as u32).to_le_bytes());
    for r in resps {
        encode_response_body(buf, *r);
    }
}

/// Decode a `RESP_BATCH` payload, appending the responses to `out` in
/// submission-slot order. Returns the response count.
// HOT: decodes server-controlled bytes on the client poll loop — must not
// panic.
pub fn decode_batch_responses(payload: &[u8], out: &mut Vec<Response>) -> Result<u32, WireError> {
    let bad = || WireError::BadPayload {
        opcode: resp::RESP_BATCH,
        len: payload.len(),
    };
    let Some((count_bytes, mut rest)) = payload.split_first_chunk::<4>() else {
        return Err(bad());
    };
    let count = u32::from_le_bytes(*count_bytes);
    // Every response body is at least one byte, so a count the payload
    // cannot hold is malformed — validated *before* the count (an untrusted
    // 4-byte field) sizes any allocation.
    if count as usize > rest.len() {
        return Err(bad());
    }
    out.reserve(count as usize);
    for _ in 0..count {
        let (r, used) = decode_response_body(rest)?;
        out.push(r);
        rest = rest.get(used..).ok_or_else(bad)?;
    }
    if !rest.is_empty() {
        return Err(bad());
    }
    Ok(count)
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// The typed statistics snapshot a `STATS` round trip carries: the table's
/// structural [`TableStats`] plus the retired-index count — no string
/// parsing on the caller side.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RemoteStats {
    /// Structural statistics as reported by `KvBackend::stats()`.
    pub table: TableStats,
    /// Retired-but-unfreed index generations (`KvBackend::retired_indexes()`).
    pub retired: u64,
    /// Cache-persona counters, present only when the server runs the
    /// memcache persona (the payload length discriminates, so old clients
    /// and kv servers interoperate unchanged).
    pub cache: Option<RemoteCacheStats>,
}

/// The cache-persona counters a `STATS` round trip carries when the server
/// is a memcache cache (a subset of [`dlht_core::CacheStats`] — the gauges
/// and counters an operator alerts on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteCacheStats {
    /// Live entries.
    pub items: u64,
    /// Resident record bytes linked in the index.
    pub value_bytes: u64,
    /// Configured memory watermark (0 = unlimited).
    pub budget: u64,
    /// Successful gets.
    pub hits: u64,
    /// Gets that found nothing.
    pub misses: u64,
    /// Entries removed because their deadline passed.
    pub expirations: u64,
    /// Entries removed by the memory-budget watermark.
    pub evictions: u64,
}

/// `RESP_STATS` payload length: ten u64 fields plus the occupancy f64.
pub const STATS_PAYLOAD_LEN: usize = 11 * 8;

/// Extra payload bytes appended by a cache-persona server.
pub const CACHE_STATS_EXT_LEN: usize = 7 * 8;

/// Encode a `RESP_STATS` frame from a stats snapshot.
pub fn encode_stats(buf: &mut Vec<u8>, stats: &TableStats, retired: usize) {
    put_header(buf, resp::RESP_STATS, STATS_PAYLOAD_LEN);
    for v in [
        stats.bins as u64,
        stats.link_buckets as u64,
        stats.links_used as u64,
        stats.occupied_slots as u64,
        stats.addressable_slots as u64,
        stats.max_slots as u64,
        stats.resizes,
        stats.generation as u64,
        stats.index_bytes as u64,
        retired as u64,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.extend_from_slice(&stats.occupancy.to_le_bytes());
}

/// Encode a `RESP_STATS` frame with the cache-persona extension appended
/// (served by `dlht_server --protocol memcache`'s admin plane).
pub fn encode_stats_cache(
    buf: &mut Vec<u8>,
    stats: &TableStats,
    retired: usize,
    cache: &dlht_core::CacheStats,
) {
    put_header(
        buf,
        resp::RESP_STATS,
        STATS_PAYLOAD_LEN + CACHE_STATS_EXT_LEN,
    );
    for v in [
        stats.bins as u64,
        stats.link_buckets as u64,
        stats.links_used as u64,
        stats.occupied_slots as u64,
        stats.addressable_slots as u64,
        stats.max_slots as u64,
        stats.resizes,
        stats.generation as u64,
        stats.index_bytes as u64,
        retired as u64,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.extend_from_slice(&stats.occupancy.to_le_bytes());
    for v in [
        cache.items,
        cache.value_bytes,
        cache.budget,
        cache.hits,
        cache.misses,
        cache.expired,
        cache.evicted,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decode a `RESP_STATS` payload (with or without the cache extension).
// HOT: decodes server-controlled bytes — must not panic.
pub fn decode_stats(payload: &[u8]) -> Result<RemoteStats, WireError> {
    if payload.len() != STATS_PAYLOAD_LEN
        && payload.len() != STATS_PAYLOAD_LEN + CACHE_STATS_EXT_LEN
    {
        return Err(WireError::BadPayload {
            opcode: resp::RESP_STATS,
            len: payload.len(),
        });
    }
    // The exact-length check above guarantees every word is present; the
    // `unwrap_or` is unreachable and only keeps this path panic-free.
    let f = |i: usize| payload.get(i * 8..).and_then(read_u64).unwrap_or(0);
    let cache =
        (payload.len() == STATS_PAYLOAD_LEN + CACHE_STATS_EXT_LEN).then(|| RemoteCacheStats {
            items: f(11),
            value_bytes: f(12),
            budget: f(13),
            hits: f(14),
            misses: f(15),
            expirations: f(16),
            evictions: f(17),
        });
    Ok(RemoteStats {
        table: TableStats {
            bins: f(0) as usize,
            link_buckets: f(1) as usize,
            links_used: f(2) as usize,
            occupied_slots: f(3) as usize,
            addressable_slots: f(4) as usize,
            max_slots: f(5) as usize,
            resizes: f(6),
            generation: f(7) as u32,
            index_bytes: f(8) as usize,
            occupancy: f64::from_bits(f(10)),
        },
        retired: f(9),
        cache,
    })
}

/// Encode an empty-payload request frame (`STATS` / `LEN`).
pub fn encode_empty(buf: &mut Vec<u8>, opcode: u8) {
    put_header(buf, opcode, 0);
}

/// Encode a `RESP_LEN` frame.
pub fn encode_len(buf: &mut Vec<u8>, len: u64) {
    put_header(buf, resp::RESP_LEN, 8);
    buf.extend_from_slice(&len.to_le_bytes());
}

/// Decode a `RESP_LEN` payload.
// HOT: decodes server-controlled bytes — must not panic.
pub fn decode_len(payload: &[u8]) -> Result<u64, WireError> {
    match read_u64(payload) {
        Some(v) if payload.len() == 8 => Ok(v),
        _ => Err(WireError::BadPayload {
            opcode: resp::RESP_LEN,
            len: payload.len(),
        }),
    }
}

/// Encode an `ERR` frame for `err` (the server closes after sending it).
pub fn encode_error_frame(buf: &mut Vec<u8>, err: &WireError) {
    let msg = err.to_string();
    let msg = &msg.as_bytes()[..msg.len().min(255)];
    put_header(buf, resp::ERR, 1 + msg.len());
    buf.push(err.code());
    buf.extend_from_slice(msg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let mut buf = Vec::new();
        put_header(&mut buf, op::GET, 8);
        buf.extend_from_slice(&7u64.to_le_bytes());
        let (frame, used) = decode_frame(&buf).unwrap().unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(frame.opcode, op::GET);
        assert_eq!(frame.payload.len(), 8);
    }

    #[test]
    fn incomplete_frames_ask_for_more() {
        let mut buf = Vec::new();
        encode_request(&mut buf, Request::Put(1, 2));
        for cut in 0..buf.len() {
            assert_eq!(
                decode_frame(&buf[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes must be incomplete, not an error"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_fail_before_the_full_header_arrives() {
        assert_eq!(decode_frame(&[0x00]), Err(WireError::BadMagic(0x00)));
        assert_eq!(decode_frame(&[MAGIC, 9]), Err(WireError::BadVersion(9)));
        assert_eq!(
            decode_frame(&[MAGIC, VERSION, op::GET, 7]),
            Err(WireError::BadReserved(7))
        );
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = vec![MAGIC, VERSION, op::GET, 0];
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::Oversized(u32::MAX as usize))
        );
    }

    #[test]
    fn request_roundtrip_all_ops() {
        for req in [
            Request::Get(42),
            Request::Put(1, 2),
            Request::Insert(u64::MAX, 0),
            Request::Delete(7),
        ] {
            let mut buf = Vec::new();
            encode_request(&mut buf, req);
            let (frame, used) = decode_frame(&buf).unwrap().unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(decode_request(frame.opcode, frame.payload).unwrap(), req);
        }
    }

    #[test]
    fn batch_roundtrip_with_policy() {
        let reqs = [
            Request::Insert(1, 10),
            Request::Get(1),
            Request::Put(1, 11),
            Request::Delete(1),
        ];
        for policy in [
            BatchPolicy::RunAll,
            BatchPolicy::StopOnFailure,
            BatchPolicy::Unordered,
        ] {
            let mut buf = Vec::new();
            encode_batch(&mut buf, &reqs, policy);
            let (frame, _) = decode_frame(&buf).unwrap().unwrap();
            assert_eq!(frame.opcode, op::BATCH);
            let (p, count, items) = decode_batch_header(frame.payload).unwrap();
            assert_eq!(p, policy);
            assert_eq!(count, 4);
            let mut iter = BatchIter::new(items, count);
            let decoded: Vec<Request> = iter.by_ref().map(|r| r.unwrap()).collect();
            assert_eq!(decoded, reqs);
            iter.finish().unwrap();
        }
    }

    #[test]
    fn batch_with_trailing_garbage_is_rejected() {
        let mut buf = Vec::new();
        encode_batch(&mut buf, &[Request::Get(1)], BatchPolicy::RunAll);
        // Re-declare the frame with one extra payload byte.
        let (frame, _) = decode_frame(&buf).unwrap().unwrap();
        let mut payload = frame.payload.to_vec();
        payload.push(0xEE);
        let (policy, count, items) = decode_batch_header(&payload).unwrap();
        assert_eq!(policy, BatchPolicy::RunAll);
        let mut iter = BatchIter::new(items, count);
        assert!(iter.by_ref().all(|r| r.is_ok()));
        assert_eq!(iter.finish(), Err(WireError::BadBatch));
    }

    #[test]
    fn batch_declaring_one_more_item_than_payload_is_rejected() {
        // Regression: count = items + 1 used to slip past finish() because
        // `remaining` was decremented before the empty-payload check.
        for present in 0..3usize {
            let reqs: Vec<Request> = (0..present as u64).map(Request::Get).collect();
            let mut buf = Vec::new();
            encode_batch(&mut buf, &reqs, BatchPolicy::RunAll);
            let (frame, _) = decode_frame(&buf).unwrap().unwrap();
            let (_, count, items) = decode_batch_header(frame.payload).unwrap();
            let mut iter = BatchIter::new(items, count + 1); // lie by one
            let decoded: Vec<_> = iter.by_ref().collect();
            assert_eq!(decoded.len(), present + 1, "{present} present");
            assert!(decoded[..present].iter().all(|r| r.is_ok()));
            assert_eq!(decoded[present], Err(WireError::BadBatch));
            assert_eq!(iter.finish(), Err(WireError::BadBatch), "{present} present");
        }
    }

    #[test]
    fn batch_response_count_cannot_outgrow_its_payload() {
        // An untrusted count must be validated before it sizes allocations.
        let mut buf = Vec::new();
        put_header(&mut buf, resp::RESP_BATCH, 4);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let (frame, _) = decode_frame(&buf).unwrap().unwrap();
        let mut out = Vec::new();
        assert!(decode_batch_responses(frame.payload, &mut out).is_err());
        assert_eq!(out.capacity(), 0, "no allocation for a lying count");
    }

    #[test]
    fn response_roundtrip_every_variant() {
        let variants = [
            Response::Value(None),
            Response::Value(Some(7)),
            Response::Updated(None),
            Response::Updated(Some(u64::MAX)),
            Response::Inserted(Ok(InsertOutcome::Inserted)),
            Response::Inserted(Ok(InsertOutcome::AlreadyExists(3))),
            Response::Inserted(Err(DlhtError::ReservedKey)),
            Response::Inserted(Err(DlhtError::TableFull)),
            Response::Inserted(Err(DlhtError::KeyTooLong)),
            Response::Inserted(Err(DlhtError::InvalidNamespace)),
            Response::Inserted(Err(DlhtError::UnsupportedInMode)),
            Response::Deleted(None),
            Response::Deleted(Some(0)),
            Response::Skipped,
        ];
        for resp in variants {
            let mut buf = Vec::new();
            encode_response(&mut buf, resp);
            let (frame, _) = decode_frame(&buf).unwrap().unwrap();
            assert_eq!(frame.opcode, super::resp::RESP);
            assert_eq!(decode_response(frame.payload).unwrap(), resp);
        }
    }

    #[test]
    fn stats_roundtrip_preserves_every_field() {
        let stats = TableStats {
            bins: 1024,
            link_buckets: 128,
            links_used: 7,
            occupied_slots: 900,
            addressable_slots: 3093,
            max_slots: 3584,
            occupancy: 0.251_953_125,
            resizes: 3,
            generation: 3,
            index_bytes: 65536,
        };
        let mut buf = Vec::new();
        encode_stats(&mut buf, &stats, 2);
        let (frame, _) = decode_frame(&buf).unwrap().unwrap();
        let decoded = decode_stats(frame.payload).unwrap();
        assert_eq!(decoded.table, stats);
        assert_eq!(decoded.retired, 2);
        assert_eq!(decoded.cache, None, "kv servers carry no cache extension");
    }

    #[test]
    fn stats_cache_extension_roundtrips() {
        let stats = TableStats {
            bins: 64,
            index_bytes: 4096,
            ..TableStats::default()
        };
        let cache = dlht_core::CacheStats {
            items: 11,
            value_bytes: 2222,
            budget: 1 << 20,
            hits: 5,
            misses: 3,
            expired: 2,
            evicted: 1,
            ..dlht_core::CacheStats::default()
        };
        let mut buf = Vec::new();
        encode_stats_cache(&mut buf, &stats, 4, &cache);
        let (frame, _) = decode_frame(&buf).unwrap().unwrap();
        let decoded = decode_stats(frame.payload).unwrap();
        assert_eq!(decoded.table, stats);
        assert_eq!(decoded.retired, 4);
        let ext = decoded.cache.expect("cache extension present");
        assert_eq!(ext.items, 11);
        assert_eq!(ext.value_bytes, 2222);
        assert_eq!(ext.budget, 1 << 20);
        assert_eq!(ext.hits, 5);
        assert_eq!(ext.misses, 3);
        assert_eq!(ext.expirations, 2);
        assert_eq!(ext.evictions, 1);
    }

    #[test]
    fn error_frames_carry_code_and_message() {
        let mut buf = Vec::new();
        encode_error_frame(&mut buf, &WireError::BadMagic(0x42));
        let (frame, _) = decode_frame(&buf).unwrap().unwrap();
        assert_eq!(frame.opcode, resp::ERR);
        assert_eq!(frame.payload[0], WireError::BadMagic(0x42).code());
        assert!(std::str::from_utf8(&frame.payload[1..])
            .unwrap()
            .contains("magic"));
    }
}
