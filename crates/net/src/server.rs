//! The TCP server: thread-per-connection serving over a shared
//! [`ShardedTable`].
//!
//! Every accepted connection gets its own OS thread and its own
//! [`dlht_core::ShardedSession`] — a per-thread handle with one cached registry slot
//! per shard — so the enter/leave announcements of batch execution go
//! through cached slots exactly as the paper's §3.2.5 protocol intends. The
//! connection loop reads whatever bytes the socket has, hands them to the
//! shared [`Service`] engine (which drains every complete pipelined frame
//! into one prefetched batch execution), and writes the response bytes back
//! in one flush.
//!
//! Shutdown is graceful and bounded: [`DlhtServer::shutdown`] flips a flag,
//! unblocks the acceptor, shuts down every live socket, and joins all
//! threads — no connection is left mid-frame (its in-flight requests are
//! answered before the read that observes the closed socket).

use crate::service::{ConnStats, Service};
use dlht_core::ShardedTable;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often a blocked connection read wakes up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    active: AtomicU64,
    frames: AtomicU64,
    ops: AtomicU64,
    batches: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A point-in-time snapshot of the server-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Connections accepted since bind.
    pub connections: u64,
    /// Connections currently open.
    pub active: u64,
    /// Request frames decoded across all connections.
    pub frames: u64,
    /// Table operations executed across all connections.
    pub ops: u64,
    /// Batch executions (drained pipeline windows + explicit `BATCH`
    /// frames).
    pub batches: u64,
    /// Connections closed for violating the protocol.
    pub protocol_errors: u64,
}

/// A running `dlht-net` TCP server (handle). Dropping the handle without
/// calling [`DlhtServer::shutdown`] leaves the threads serving until the
/// process exits.
pub struct DlhtServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept_thread: JoinHandle<()>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl DlhtServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `table`. Returns as soon as the listener is live.
    pub fn bind(addr: impl ToSocketAddrs, table: Arc<ShardedTable>) -> std::io::Result<DlhtServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_thread = {
            let shutdown = shutdown.clone();
            let counters = counters.clone();
            let conns = conns.clone();
            let workers = workers.clone();
            std::thread::spawn(move || {
                accept_loop(listener, table, shutdown, counters, conns, workers)
            })
        };

        Ok(DlhtServer {
            local_addr,
            shutdown,
            counters,
            accept_thread,
            conns,
            workers,
        })
    }

    /// The address the server is listening on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot the server-wide counters. Per-connection contributions are
    /// folded in as each connection's processing loop runs, so the numbers
    /// are live, not close-time.
    pub fn counters(&self) -> ServerCounters {
        ServerCounters {
            connections: self.counters.connections.load(Ordering::Relaxed),
            active: self.counters.active.load(Ordering::Relaxed),
            frames: self.counters.frames.load(Ordering::Relaxed),
            ops: self.counters.ops.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Gracefully stop: unblock the acceptor, close every live connection,
    /// and join all threads. Returns the final counter snapshot.
    pub fn shutdown(self) -> ServerCounters {
        // A plain stop flag needs no total order — Release here pairs with the
        // Acquire polls in the acceptor and connection loops, and the
        // subsequent joins provide the actual synchronization.
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection; the acceptor
        // re-checks the flag before handling it. An unspecified bind address
        // (0.0.0.0 / ::) is not connectable on every platform — wake through
        // the matching loopback address instead.
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake_addr);
        let _ = self.accept_thread.join();
        // Unblock connection reads immediately rather than waiting for their
        // next poll tick.
        for stream in self.conns.lock().expect("conns lock").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for handle in workers {
            let _ = handle.join();
        }
        ServerCounters {
            connections: self.counters.connections.load(Ordering::Relaxed),
            active: self.counters.active.load(Ordering::Relaxed),
            frames: self.counters.frames.load(Ordering::Relaxed),
            ops: self.counters.ops.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    table: Arc<ShardedTable>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                // A persistent accept error (EMFILE under fd pressure, ...)
                // must not busy-spin the acceptor.
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
        };
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let conn_id = counters.connections.fetch_add(1, Ordering::Relaxed);
        counters.active.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        // The read timeout doubles as the shutdown poll interval.
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        if let Ok(clone) = stream.try_clone() {
            conns.lock().expect("conns lock").insert(conn_id, clone);
        }
        let handle = {
            let table = table.clone();
            let shutdown = shutdown.clone();
            let counters = counters.clone();
            let conns = conns.clone();
            std::thread::spawn(move || {
                serve_connection(stream, &table, &shutdown, &counters);
                counters.active.fetch_sub(1, Ordering::Relaxed);
                // Release this connection's cloned fd; the handle itself is
                // reaped by the acceptor (or joined at shutdown).
                conns.lock().expect("conns lock").remove(&conn_id);
            })
        };
        // Long-running servers must not accumulate one JoinHandle per
        // closed connection: drop finished handles before tracking the new
        // one (shutdown still joins everything live).
        let mut workers = workers.lock().expect("workers lock");
        workers.retain(|h| !h.is_finished());
        workers.push(handle);
    }
}

/// One connection's lifetime: a cached [`dlht_core::ShardedSession`] wrapped
/// in a [`Service`], fed from the socket until EOF, error, protocol
/// violation, or server shutdown.
fn serve_connection(
    mut stream: TcpStream,
    table: &ShardedTable,
    shutdown: &AtomicBool,
    counters: &Counters,
) {
    let session = table.session();
    let mut service = Service::new(session);
    let mut chunk = vec![0u8; 64 * 1024];
    // Unconsumed tail (an incomplete frame) carried between reads.
    let mut pending: Vec<u8> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    let mut reported = ConnStats::default();

    loop {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        pending.extend_from_slice(&chunk[..n]);
        out.clear();
        let result = service.process(&pending, &mut out);
        let failed = result.is_err();
        if let Ok(consumed) = result {
            pending.drain(..consumed);
        }
        if !out.is_empty() && stream.write_all(&out).is_err() {
            break;
        }
        fold_stats(counters, &mut reported, service.stats());
        if failed {
            counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
    }
    fold_stats(counters, &mut reported, service.stats());
}

/// Fold the delta between the service's counters and what was already
/// reported into the server-wide totals.
fn fold_stats(counters: &Counters, reported: &mut ConnStats, now: ConnStats) {
    counters
        .frames
        .fetch_add(now.frames - reported.frames, Ordering::Relaxed);
    counters
        .ops
        .fetch_add(now.ops - reported.ops, Ordering::Relaxed);
    counters
        .batches
        .fetch_add(now.batches - reported.batches, Ordering::Relaxed);
    *reported = now;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::DlhtClient;
    use dlht_core::{BatchPolicy, KvBackend, Request, Response};

    fn start() -> (DlhtServer, Arc<ShardedTable>) {
        let table = Arc::new(ShardedTable::with_capacity(4, 4_096));
        let server = DlhtServer::bind("127.0.0.1:0", table.clone()).expect("bind");
        (server, table)
    }

    #[test]
    fn tcp_roundtrip_singles_and_stats() {
        let (server, table) = start();
        let mut client = DlhtClient::connect(server.local_addr()).expect("connect");
        client.ping().unwrap();
        assert!(client.insert(1, 10).unwrap().inserted());
        assert_eq!(client.get(1).unwrap(), Some(10));
        assert_eq!(client.put(1, 11).unwrap(), Some(10));
        assert_eq!(client.delete(1).unwrap(), Some(11));
        assert_eq!(client.get(1).unwrap(), None);
        assert!(matches!(
            client.insert(u64::MAX, 1),
            Err(crate::client::NetError::Table(
                dlht_core::DlhtError::ReservedKey
            ))
        ));
        let _ = client.insert(2, 20).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.table.occupied_slots, 1);
        assert_eq!(client.server_len().unwrap(), 1);
        assert_eq!(table.get(2), Some(20), "served writes hit the real table");
        let counters = server.shutdown();
        assert_eq!(counters.connections, 1);
        assert_eq!(counters.protocol_errors, 0);
        assert!(counters.ops >= 7);
    }

    #[test]
    fn pipelined_and_batch_paths_match_local_semantics() {
        let (server, table) = start();
        let mut client = DlhtClient::connect(server.local_addr()).expect("connect");
        let reqs: Vec<Request> = (0..32u64).map(|k| Request::Insert(k, k * 3)).collect();
        let resps = client.pipelined(&reqs).unwrap();
        assert!(resps.iter().all(|r| r.succeeded()));
        let out = client
            .execute_requests(
                &[
                    Request::Get(31),
                    Request::Get(999), // miss -> stop
                    Request::Delete(0),
                ],
                BatchPolicy::StopOnFailure,
            )
            .unwrap();
        assert_eq!(out[0], Response::Value(Some(93)));
        assert_eq!(out[2], Response::Skipped);
        assert_eq!(table.len(), 32, "skipped delete must not run");
        server.shutdown();
    }

    #[test]
    fn garbage_closes_the_connection_but_not_the_server() {
        let (server, _table) = start();
        // Connection 1 sends garbage and must be rejected.
        {
            let mut bad = TcpStream::connect(server.local_addr()).unwrap();
            bad.write_all(&[0xAB; 32]).unwrap();
            let mut buf = Vec::new();
            let _ = bad.read_to_end(&mut buf); // server replies ERR then closes
            let (frame, _) = crate::wire::decode_frame(&buf).unwrap().unwrap();
            assert_eq!(frame.opcode, crate::wire::resp::ERR);
        }
        // Connection 2 still works.
        let mut good = DlhtClient::connect(server.local_addr()).unwrap();
        assert!(good.insert(5, 50).unwrap().inserted());
        assert_eq!(good.get(5).unwrap(), Some(50));
        let counters = server.shutdown();
        assert_eq!(counters.protocol_errors, 1);
    }

    #[test]
    fn shutdown_joins_all_threads_quickly() {
        let (server, _) = start();
        let mut clients: Vec<_> = (0..4)
            .map(|_| DlhtClient::connect(server.local_addr()).unwrap())
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            assert!(c.insert(i as u64, 1).unwrap().inserted());
        }
        let t = std::time::Instant::now();
        let counters = server.shutdown();
        assert!(
            t.elapsed() < Duration::from_secs(2),
            "graceful shutdown must be bounded"
        );
        assert_eq!(counters.connections, 4);
        assert_eq!(counters.active, 0);
    }
}
