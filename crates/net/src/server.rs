//! The TCP server: an event-driven, non-blocking readiness loop over a
//! shared [`ShardedTable`].
//!
//! ## Shape
//!
//! ```text
//!  acceptor thread ──round-robin──▶ worker 0 ┐
//!     (blocking accept)            worker 1  │ fixed pool, one thread each
//!                                  …         │
//!                                  worker N-1┘
//!
//!  each worker owns:   one cached ShardedSession (per-shard registry slots)
//!                      one Poller (level-triggered poll(2) readiness)
//!                      its connections: TcpStream + read/write ByteRing
//!                                       + a Service (reusable Batch)
//! ```
//!
//! Every accepted connection is handed to one worker and stays there, so a
//! connection's frames are always processed in order by a single thread —
//! and that thread drives *all* of its connections through one
//! [`crate::poll::Poller`]: thousands of connections cost N threads, not
//! thousands. Each readiness pass reads whatever a socket has into the
//! connection's read ring, lets the shared [`Service`] engine drain every
//! complete pipelined frame into one prefetched batch execution, appends
//! the response bytes to the write ring, and writes as much as the socket
//! accepts — never blocking on a peer.
//!
//! ## Backpressure and memory
//!
//! * A connection whose peer stops reading accumulates responses in its
//!   write ring; at [`WRITE_HIGH_WATER`] the worker stops *reading* from it
//!   (level-triggered polling resumes the read automatically once the
//!   write side drains). A dead or non-reading client therefore costs a
//!   bounded buffer — never a pinned thread (the old thread-per-connection
//!   server blocked forever in `write_all`).
//! * [`crate::ByteRing`] keeps per-connection memory flat: amortized O(1)
//!   consumption (no quadratic `Vec::drain`) and capacity released once a
//!   buffer drains after an oversized frame. [`DlhtServer::buffer_bytes`]
//!   exposes the live total for the flat-memory acceptance check.
//!
//! ## Robustness
//!
//! * Per-connection accounting hangs off a drop guard: however a
//!   connection dies — EOF, protocol error, io error, even a panic in its
//!   handler — the `active` gauge is decremented exactly once when the
//!   connection's state drops. Panics are additionally unwind-caught per
//!   connection so one poisoned connection cannot take down its worker's
//!   other connections ([`ServerCounters::panics`] counts them).
//! * An optional **admin plane** on a separate port
//!   ([`ServerConfig::admin_addr`]) serves `STATS`/`LEN`/`PING` only, so
//!   operational queries never queue behind data traffic; data opcodes on
//!   the admin port are rejected with
//!   [`crate::wire::WireError::AdminRestricted`].
//!
//! Shutdown is graceful and bounded: [`DlhtServer::shutdown`] flips a
//! flag, wakes the acceptor, the admin plane, and every worker, and joins
//! all threads; every connection's drop guard runs, so the final counter
//! snapshot always reports `active == 0`.

use crate::buf::ByteRing;
use crate::memcache::MemcacheConn;
use crate::metrics::{self, ServerMetrics};
use crate::poll::{waker_pair, Event, Interest, Poller, Source, WakeReceiver, Waker};
use crate::service::{ConnStats, Drive, Service};
use crate::wire::{self, WireError};
use dlht_core::{CacheMap, CacheSession, CacheStats, ShardedSession, ShardedTable, TableStats};
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on how long any loop sleeps before re-checking the shutdown
/// flag (workers are normally woken long before this via their wakers).
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Bytes read from a socket per `read` call on the event loop.
const READ_CHUNK: usize = 16 * 1024;

/// Write-ring backpressure threshold: once a connection has this many
/// unsent response bytes, the worker stops reading new requests from it
/// until the write side drains. (One pass can overshoot by at most the
/// responses to one 16 KiB read chunk of requests plus one maximum-size batch
/// response, so per-connection memory stays bounded.)
pub const WRITE_HIGH_WATER: usize = 256 * 1024;

/// A point-in-time snapshot of the server-wide counters, folded from the
/// striped [`ServerMetrics`] registry cells (the full registry — gauges,
/// histograms, trace ring — is reachable via [`DlhtServer::metrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Data connections accepted since bind (the admin plane counts
    /// separately, in [`ServerCounters::admin_frames`]).
    pub connections: u64,
    /// Data connections currently open.
    pub active: u64,
    /// Request frames decoded across all connections.
    pub frames: u64,
    /// Table operations executed across all connections.
    pub ops: u64,
    /// Batch executions (drained pipeline windows + explicit `BATCH`
    /// frames).
    pub batches: u64,
    /// Connections closed for violating the protocol.
    pub protocol_errors: u64,
    /// Connections torn down because their handler panicked (each panic is
    /// unwind-caught and isolated to its connection).
    pub panics: u64,
    /// Frames served by the admin plane (`STATS`/`LEN`/`PING`).
    pub admin_frames: u64,
}

/// Configuration for [`DlhtServer::bind_with`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Event-loop worker threads (each owns one cached
    /// [`ShardedSession`]). `0` picks a default:
    /// `min(4, available_parallelism)`.
    pub workers: usize,
    /// Bind an admin plane on this address (e.g. `"127.0.0.1:0"`) serving
    /// `STATS`/`LEN`/`PING` on its own port, isolated from data traffic.
    /// `None` disables it.
    pub admin_addr: Option<String>,
    /// Test-only fault injection: panic the connection handler when a `GET`
    /// for this key arrives (before any table execution). Exercises the
    /// unwind isolation and drop-guard accounting; leave `None` outside
    /// tests.
    #[doc(hidden)]
    pub fault_key: Option<u64>,
    /// Cache persona only: how often the background reaper sweeps expired
    /// entries and enforces the memory budget, in milliseconds. `0` picks
    /// the default (500 ms).
    pub reap_interval_ms: u64,
    /// Record every request at least this slow (µs) into the per-worker
    /// slow-op trace ring served at `GET /trace` on the admin plane. `0`
    /// traces every request; `None` disables tracing.
    pub trace_slow_us: Option<u64>,
}

impl ServerConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(1, 4)
    }

    fn resolved_reap_interval(&self) -> Duration {
        if self.reap_interval_ms > 0 {
            Duration::from_millis(self.reap_interval_ms)
        } else {
            Duration::from_millis(500)
        }
    }
}

/// Which protocol a listener speaks, and the store behind it.
enum Persona {
    /// The binary kv wire protocol over a [`ShardedTable`] (the default).
    Kv {
        table: Arc<ShardedTable>,
        fault_key: Option<u64>,
    },
    /// The memcache text protocol over a [`CacheMap`] (TTL + eviction).
    Cache { cache: Arc<CacheMap> },
}

/// What the admin plane needs from a store, whichever persona serves the
/// data plane: `STATS`/`LEN` answers plus the cache counter extension.
pub trait AdminBackend: Send + Sync {
    /// Structural statistics for the `STATS` command.
    fn table_stats(&self) -> TableStats;
    /// Retired-index count for the `STATS` command.
    fn retired_indexes(&self) -> usize;
    /// Live keys for the `LEN` command.
    fn live_keys(&self) -> u64;
    /// Cache persona counters; `None` on the kv persona (the `STATS`
    /// response is then the plain, unextended payload).
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }
}

impl AdminBackend for ShardedTable {
    fn table_stats(&self) -> TableStats {
        self.stats()
    }
    fn retired_indexes(&self) -> usize {
        ShardedTable::retired_indexes(self)
    }
    fn live_keys(&self) -> u64 {
        self.len() as u64
    }
}

impl AdminBackend for CacheMap {
    fn table_stats(&self) -> TableStats {
        CacheMap::table_stats(self)
    }
    fn retired_indexes(&self) -> usize {
        CacheMap::retired_indexes(self)
    }
    fn live_keys(&self) -> u64 {
        self.len()
    }
    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.stats())
    }
}

/// Per-worker channel from the acceptor (and the shutdown path) into the
/// worker's event loop.
struct WorkerShared {
    /// Connections handed over by the acceptor, not yet adopted.
    incoming: Mutex<Vec<(TcpStream, ActiveGuard)>>,
    /// Interrupts the worker's poll.
    waker: Waker,
    /// Live gauge: bytes of ring-buffer capacity pinned by this worker's
    /// connections (stored once per event-loop pass).
    buffer_bytes: AtomicU64,
}

struct WorkerHandle {
    shared: Arc<WorkerShared>,
    thread: JoinHandle<()>,
}

/// A running `dlht-net` TCP server (handle). Dropping the handle without
/// calling [`DlhtServer::shutdown`] leaves the threads serving until the
/// process exits.
pub struct DlhtServer {
    local_addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    accept_thread: JoinHandle<()>,
    workers: Vec<WorkerHandle>,
    admin_thread: Option<JoinHandle<()>>,
    admin_conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    admin_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    reaper_thread: Option<JoinHandle<()>>,
    cache: Option<Arc<CacheMap>>,
}

impl DlhtServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `table` with the default [`ServerConfig`]. Returns as soon as the
    /// listener is live.
    pub fn bind(addr: impl ToSocketAddrs, table: Arc<ShardedTable>) -> std::io::Result<DlhtServer> {
        Self::bind_with(addr, table, ServerConfig::default())
    }

    /// [`DlhtServer::bind`] with explicit worker count, admin plane, and
    /// test hooks.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        table: Arc<ShardedTable>,
        config: ServerConfig,
    ) -> std::io::Result<DlhtServer> {
        let fault_key = config.fault_key;
        Self::bind_persona(addr, Persona::Kv { table, fault_key }, config)
    }

    /// Bind the cache persona: the same event-loop server core speaking the
    /// memcache text protocol over `cache`, with a background expiry/
    /// eviction reaper ticking every
    /// [`ServerConfig::reap_interval_ms`] milliseconds.
    pub fn bind_memcache(
        addr: impl ToSocketAddrs,
        cache: Arc<CacheMap>,
        config: ServerConfig,
    ) -> std::io::Result<DlhtServer> {
        Self::bind_persona(addr, Persona::Cache { cache }, config)
    }

    fn bind_persona(
        addr: impl ToSocketAddrs,
        persona: Persona,
        config: ServerConfig,
    ) -> std::io::Result<DlhtServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let lanes = config.resolved_workers();
        let metrics = Arc::new(match &persona {
            Persona::Kv { .. } => ServerMetrics::new_kv(lanes, config.trace_slow_us),
            Persona::Cache { .. } => ServerMetrics::new_cache(lanes, config.trace_slow_us),
        });
        // Structural gauges read the live store at scrape time — no
        // hot-path cost, always-current values.
        match &persona {
            Persona::Kv { table, .. } => {
                metrics::register_kv_gauges(metrics.registry(), table.clone());
            }
            Persona::Cache { cache } => {
                metrics::register_cache_gauges(metrics.registry(), cache.clone());
            }
        }

        let mut workers = Vec::new();
        for i in 0..lanes {
            let (waker, wake_rx) = waker_pair()?;
            let shared = Arc::new(WorkerShared {
                incoming: Mutex::new(Vec::new()),
                waker,
                buffer_bytes: AtomicU64::new(0),
            });
            let thread = std::thread::Builder::new()
                .name(format!("dlht-worker-{i}"))
                .spawn({
                    let shared = shared.clone();
                    let shutdown = shutdown.clone();
                    let metrics = metrics.clone();
                    match &persona {
                        Persona::Kv { table, fault_key } => {
                            let table = table.clone();
                            let fault_key = *fault_key;
                            Box::new(move || {
                                worker_loop_kv(
                                    &table, &shared, wake_rx, &shutdown, &metrics, i, fault_key,
                                )
                            }) as Box<dyn FnOnce() + Send>
                        }
                        Persona::Cache { cache } => {
                            let cache = cache.clone();
                            Box::new(move || {
                                worker_loop_cache(&cache, &shared, wake_rx, &shutdown, &metrics, i)
                            }) as Box<dyn FnOnce() + Send>
                        }
                    }
                })?;
            workers.push(WorkerHandle { shared, thread });
        }

        {
            let shareds: Vec<Arc<WorkerShared>> =
                workers.iter().map(|w| w.shared.clone()).collect();
            metrics.registry().gauge_fn(
                "dlht_buffer_bytes",
                "Ring-buffer capacity pinned across all data connections",
                &[],
                move || {
                    shareds
                        .iter()
                        .map(|s| s.buffer_bytes.load(Ordering::Relaxed))
                        .sum()
                },
            );
            let n = workers.len() as u64;
            metrics.registry().gauge_fn(
                "dlht_workers",
                "Event-loop worker threads serving data connections",
                &[],
                move || n,
            );
        }

        let accept_thread = {
            let shutdown = shutdown.clone();
            let metrics = metrics.clone();
            let shareds: Vec<Arc<WorkerShared>> =
                workers.iter().map(|w| w.shared.clone()).collect();
            std::thread::Builder::new()
                .name("dlht-accept".to_string())
                .spawn(move || accept_loop(listener, &shutdown, &metrics, &shareds))?
        };

        let admin_backend: Arc<dyn AdminBackend> = match &persona {
            Persona::Kv { table, .. } => table.clone(),
            Persona::Cache { cache } => cache.clone(),
        };
        let admin_conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::default();
        let admin_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let (admin_thread, admin_addr) = match &config.admin_addr {
            None => (None, None),
            Some(addr) => {
                let admin_listener = TcpListener::bind(addr.as_str())?;
                let admin_addr = admin_listener.local_addr()?;
                let thread = std::thread::Builder::new()
                    .name("dlht-admin".to_string())
                    .spawn({
                        let backend = admin_backend.clone();
                        let shutdown = shutdown.clone();
                        let metrics = metrics.clone();
                        let conns = admin_conns.clone();
                        let threads = admin_threads.clone();
                        move || {
                            admin_accept_loop(
                                admin_listener,
                                &backend,
                                &shutdown,
                                &metrics,
                                &conns,
                                &threads,
                            )
                        }
                    })?;
                (Some(thread), Some(admin_addr))
            }
        };

        let cache = match &persona {
            Persona::Kv { .. } => None,
            Persona::Cache { cache } => Some(cache.clone()),
        };
        let reaper_thread = match &cache {
            None => None,
            Some(cache) => Some(
                std::thread::Builder::new()
                    .name("dlht-reaper".to_string())
                    .spawn({
                        let cache = cache.clone();
                        let shutdown = shutdown.clone();
                        let interval = config.resolved_reap_interval();
                        move || reaper_loop(&cache, interval, &shutdown)
                    })?,
            ),
        };

        Ok(DlhtServer {
            local_addr,
            admin_addr,
            shutdown,
            metrics,
            accept_thread,
            workers,
            admin_thread,
            admin_conns,
            admin_threads,
            reaper_thread,
            cache,
        })
    }

    /// The cache behind a memcache-persona listener (`None` on kv).
    pub fn cache(&self) -> Option<&Arc<CacheMap>> {
        self.cache.as_ref()
    }

    /// The address the data plane is listening on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The admin plane's address, if one was configured.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// Number of event-loop worker threads serving data connections.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Bytes of ring-buffer capacity currently pinned across every data
    /// connection (the flat-per-connection-memory gauge; updated once per
    /// event-loop pass on each worker).
    pub fn buffer_bytes(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.shared.buffer_bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot the server-wide counters. Per-connection contributions are
    /// folded in as each event-loop pass runs, so the numbers are live,
    /// not close-time.
    pub fn counters(&self) -> ServerCounters {
        self.metrics.server_counters()
    }

    /// The full observability surface behind this server: the metrics
    /// registry (counters, gauges, per-opcode latency histograms) and the
    /// slow-op trace rings — everything the admin plane serves at
    /// `GET /metrics`, `/metrics.json`, and `/trace`.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Gracefully stop: wake the acceptor, the admin plane, and every
    /// worker; join all threads. Returns the final counter snapshot
    /// (always with `active == 0` — every connection's drop guard has run).
    pub fn shutdown(self) -> ServerCounters {
        // ORDERING: a plain stop flag needs no total order — Release pairs
        // with the Acquire polls in the acceptor/worker/admin loops, and
        // the joins below provide the actual synchronization.
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection; the
        // acceptor re-checks the flag before handling it. An unspecified
        // bind address (0.0.0.0 / ::) is not connectable on every platform
        // — wake through the matching loopback address instead.
        let _ = TcpStream::connect(connectable(self.local_addr));
        let _ = self.accept_thread.join();
        // Workers: interrupt their polls, join, then release any accepted-
        // but-never-adopted connections so their guards run before the
        // final snapshot.
        for worker in &self.workers {
            worker.shared.waker.wake();
        }
        for worker in self.workers {
            let _ = worker.thread.join();
            worker
                .shared
                .incoming
                .lock()
                .expect("incoming lock")
                .clear();
        }
        // Admin plane: same dance as the data acceptor.
        if let Some(thread) = self.admin_thread {
            if let Some(addr) = self.admin_addr {
                let _ = TcpStream::connect(connectable(addr));
            }
            let _ = thread.join();
        }
        for stream in self.admin_conns.lock().expect("admin conns lock").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let admin_threads =
            std::mem::take(&mut *self.admin_threads.lock().expect("admin threads lock"));
        for handle in admin_threads {
            let _ = handle.join();
        }
        // The reaper re-checks the shutdown flag at least every
        // POLL_INTERVAL, so this join is bounded too.
        if let Some(reaper) = self.reaper_thread {
            let _ = reaper.join();
        }
        self.metrics.server_counters()
    }
}

/// Rewrite an unspecified listen address (0.0.0.0 / ::) into the matching
/// loopback so the shutdown wake-up connect succeeds everywhere.
fn connectable(mut addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

/// Decrements the server-wide `active` gauge exactly once, however the
/// owning connection dies (EOF, protocol error, io error, handler panic,
/// worker shutdown, or never being adopted at all): the guard is created at
/// accept time and travels with the connection, so the decrement rides
/// `Drop` instead of any particular exit path.
struct ActiveGuard {
    metrics: Arc<ServerMetrics>,
    /// The destination worker's lane: increment and decrement hit the same
    /// striped cell, so each lane's contribution returns to exactly zero.
    lane: usize,
}

impl ActiveGuard {
    fn new(metrics: Arc<ServerMetrics>, lane: usize) -> ActiveGuard {
        metrics.active.add(lane, 1);
        ActiveGuard { metrics, lane }
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.metrics.active.sub(self.lane, 1);
    }
}

fn accept_loop(
    listener: TcpListener,
    shutdown: &AtomicBool,
    metrics: &Arc<ServerMetrics>,
    workers: &[Arc<WorkerShared>],
) {
    let mut next = 0usize;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                // A persistent accept error (EMFILE under fd pressure, ...)
                // must not busy-spin the acceptor.
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
        };
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        // Round-robin hand-off: a connection lives on one worker for its
        // whole lifetime (per-connection frame order needs no locking), and
        // its accounting uses that worker's metric lane.
        let lane = next % workers.len();
        next = next.wrapping_add(1);
        metrics.connections.incr(lane);
        let guard = ActiveGuard::new(metrics.clone(), lane);
        let _ = stream.set_nodelay(true);
        let _ = stream.set_nonblocking(true);
        let shared = &workers[lane];
        shared
            .incoming
            .lock()
            .expect("incoming lock")
            .push((stream, guard));
        shared.waker.wake();
    }
}

/// Connection lifecycle on its worker.
enum ConnState {
    /// Reading requests and serving responses.
    Open,
    /// Closing after the write ring drains: either a protocol violation
    /// (the ring ends with the error answer) or a clean `quit` (the ring
    /// ends with the last pipelined responses). No more reads.
    Draining,
}

/// One protocol adapter instance per connection: turn input bytes into
/// response bytes against the worker's shared engine `E`. The two
/// implementations are the binary kv [`Service`] (engine `()` — the service
/// holds its session itself) and the memcache [`MemcacheConn`] (engine
/// [`CacheSession`]).
trait ConnProto<E> {
    /// Serve every complete request in `input`, appending responses to
    /// `out`. Returns consumed bytes (partial trailing input must consume
    /// nothing) and how the connection proceeds.
    fn process(&mut self, engine: &mut E, input: &[u8], out: &mut Vec<u8>) -> (usize, Drive);
    /// Live per-connection counters, folded into the server totals.
    fn stats(&self) -> ConnStats;
}

/// The binary kv protocol as a [`ConnProto`]: [`Service`] already holds the
/// worker's `&ShardedSession`, so the event-loop engine is `()`. (Two
/// lifetimes, because the borrow of the worker-local session is strictly
/// shorter than the session's own borrow of the table.)
struct KvProto<'s, 't> {
    service: Service<&'s ShardedSession<'t>>,
    fault_key: Option<u64>,
}

impl ConnProto<()> for KvProto<'_, '_> {
    fn process(&mut self, _engine: &mut (), input: &[u8], out: &mut Vec<u8>) -> (usize, Drive) {
        if let Some(key) = self.fault_key {
            maybe_inject_fault(input, key);
        }
        match self.service.process(input, out) {
            Ok(consumed) => (consumed, Drive::Keep),
            // The rest of the input can never become valid; the ERR frame
            // is already in `out`.
            Err(_) => (input.len(), Drive::CloseError),
        }
    }
    fn stats(&self) -> ConnStats {
        self.service.stats()
    }
}

impl<'a> ConnProto<CacheSession<'a>> for MemcacheConn {
    fn process(
        &mut self,
        engine: &mut CacheSession<'a>,
        input: &[u8],
        out: &mut Vec<u8>,
    ) -> (usize, Drive) {
        MemcacheConn::process(self, engine, input, out)
    }
    fn stats(&self) -> ConnStats {
        MemcacheConn::stats(self)
    }
}

/// One connection's event-loop state: its socket, rings, and protocol
/// adapter `P` (which carries the per-connection parser/batch state).
struct Conn<P> {
    stream: TcpStream,
    proto: P,
    rbuf: ByteRing,
    wbuf: ByteRing,
    reported: ConnStats,
    state: ConnState,
    _guard: ActiveGuard,
}

enum Disposition {
    Keep,
    Close,
}

enum FlushOutcome {
    /// Wrote what the socket would take (possibly zero bytes).
    Progress,
    /// The connection is gone.
    Fatal,
}

/// The kv persona's worker: one cached [`ShardedSession`] shared by every
/// connection on this worker, exactly like the paper's per-thread protocol
/// (§3.2.5) intends — N workers, N sessions, regardless of connection
/// count.
fn worker_loop_kv(
    table: &ShardedTable,
    shared: &WorkerShared,
    wake_rx: WakeReceiver,
    shutdown: &AtomicBool,
    metrics: &ServerMetrics,
    lane: usize,
    fault_key: Option<u64>,
) {
    let session = table.session();
    let session = &session;
    let obs = metrics.kv_obs(lane);
    let env = WorkerEnv {
        shared,
        shutdown,
        metrics,
        lane,
    };
    run_event_loop(
        &mut (),
        || {
            let mut service = Service::new(session);
            if let Some(obs) = obs.clone() {
                service = service.with_obs(obs);
            }
            KvProto { service, fault_key }
        },
        |_| {},
        &env,
        wake_rx,
    );
}

/// The cache persona's worker: one [`CacheSession`] shared by every
/// memcache connection on this worker, quiesced once per event-loop pass so
/// records retired by deletes/evictions on this thread become reclaimable
/// (the reaper's own quiescence then frees them).
fn worker_loop_cache(
    cache: &CacheMap,
    shared: &WorkerShared,
    wake_rx: WakeReceiver,
    shutdown: &AtomicBool,
    metrics: &ServerMetrics,
    lane: usize,
) {
    let mut session = cache.session();
    let obs = metrics.mc_obs(lane);
    let env = WorkerEnv {
        shared,
        shutdown,
        metrics,
        lane,
    };
    run_event_loop(
        &mut session,
        || {
            let mut conn = MemcacheConn::new();
            if let Some(obs) = obs.clone() {
                conn = conn.with_obs(obs);
            }
            conn
        },
        |session| session.quiesce(),
        &env,
        wake_rx,
    );
}

/// One worker's view of the server-wide plumbing, bundled so the event
/// loop and its helpers take one context instead of four parallel
/// references. `lane` is this worker's stripe in every
/// [`ServerMetrics`] instrument.
struct WorkerEnv<'a> {
    shared: &'a WorkerShared,
    shutdown: &'a AtomicBool,
    metrics: &'a ServerMetrics,
    lane: usize,
}

/// The shared event loop both personas run: adopt handed-over connections,
/// poll readiness, drive each ready connection through its [`ConnProto`],
/// publish the buffer gauge, and let the persona hook run once per pass.
fn run_event_loop<E, P: ConnProto<E>>(
    engine: &mut E,
    mut new_proto: impl FnMut() -> P,
    mut end_pass: impl FnMut(&mut E),
    env: &WorkerEnv<'_>,
    mut wake_rx: WakeReceiver,
) {
    let mut poller = Poller::new();
    let mut conns: Vec<Option<Conn<P>>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut sources: Vec<(Source, Interest)> = Vec::new();
    let mut slots: Vec<usize> = Vec::new();
    let mut events: Vec<Event> = Vec::new();

    while !env.shutdown.load(Ordering::Acquire) {
        // Adopt connections the acceptor handed over.
        let adopted = std::mem::take(&mut *env.shared.incoming.lock().expect("incoming lock"));
        for (stream, guard) in adopted {
            let conn = Conn {
                stream,
                proto: new_proto(),
                rbuf: ByteRing::new(),
                wbuf: ByteRing::new(),
                reported: ConnStats::default(),
                state: ConnState::Open,
                _guard: guard,
            };
            match free.pop() {
                Some(slot) => conns[slot] = Some(conn),
                None => conns.push(Some(conn)),
            }
        }

        // Build this pass's interest set; source 0 is always the waker.
        sources.clear();
        slots.clear();
        sources.push((wake_rx.source(), Interest::READ));
        slots.push(usize::MAX);
        for (slot, conn) in conns.iter().enumerate() {
            let Some(conn) = conn else { continue };
            let interest = Interest {
                readable: matches!(conn.state, ConnState::Open)
                    && conn.wbuf.len() < WRITE_HIGH_WATER,
                writable: !conn.wbuf.is_empty(),
            };
            sources.push((Source::from_stream(&conn.stream), interest));
            slots.push(slot);
        }

        if poller.poll(&sources, POLL_INTERVAL, &mut events).is_err() {
            // A persistently failing poll must not busy-spin the worker.
            std::thread::sleep(POLL_INTERVAL);
            continue;
        }

        for ev in &events {
            let Some(&slot) = slots.get(ev.token) else {
                continue;
            };
            if slot == usize::MAX {
                wake_rx.drain();
                continue;
            }
            let Some(conn) = conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                continue;
            };
            // One poisoned connection must not take down the worker's other
            // connections: unwind-catch the drive and tear only this
            // connection down (its drop guard keeps `active` exact).
            let drive = std::panic::catch_unwind(AssertUnwindSafe(|| {
                drive_connection(conn, engine, *ev, env)
            }));
            let close = match drive {
                Ok(Disposition::Keep) => false,
                Ok(Disposition::Close) => true,
                Err(_) => {
                    env.metrics.panics.incr(env.lane);
                    true
                }
            };
            if close {
                if let Some(dead) = conns.get_mut(slot).and_then(|c| c.take()) {
                    let _ = dead.stream.shutdown(Shutdown::Both);
                    free.push(slot);
                    // Dropping `dead` runs its ActiveGuard.
                }
            }
        }

        // Flat-memory gauge: ring capacity pinned by this worker's
        // connections right now.
        let bytes: u64 = conns
            .iter()
            .flatten()
            .map(|c| (c.rbuf.capacity() + c.wbuf.capacity()) as u64)
            .sum();
        env.shared.buffer_bytes.store(bytes, Ordering::Relaxed);

        // Persona hook (the cache worker announces a quiescent point here,
        // after every borrowed entry pointer from this pass is dead).
        end_pass(engine);
    }

    // Shutdown: close every socket so peers observe it immediately, then
    // drop the connection table (each guard decrements `active`).
    for conn in conns.iter().flatten() {
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
    conns.clear();
    env.shared.buffer_bytes.store(0, Ordering::Relaxed);
}

/// Handle one readiness event for one connection. Never blocks: reads and
/// writes are non-blocking, and `WouldBlock` simply defers to the next
/// readiness pass.
fn drive_connection<E, P: ConnProto<E>>(
    conn: &mut Conn<P>,
    engine: &mut E,
    ev: Event,
    env: &WorkerEnv<'_>,
) -> Disposition {
    // Writes first: draining the write ring both delivers queued responses
    // and lifts read backpressure at the next interest build.
    if ev.writable {
        if matches!(flush_writes(conn), FlushOutcome::Fatal) {
            return Disposition::Close;
        }
        if conn.wbuf.is_empty() && matches!(conn.state, ConnState::Draining) {
            return Disposition::Close; // final answer delivered
        }
    }
    if ev.readable && matches!(conn.state, ConnState::Open) {
        loop {
            match conn.rbuf.read_from(&mut conn.stream, READ_CHUNK) {
                Ok(0) => {
                    // EOF: answer what was validly pipelined, best-effort
                    // flush, close.
                    let _ = process_input(conn, engine, env);
                    let _ = flush_writes(conn);
                    return Disposition::Close;
                }
                Ok(n) => {
                    if !matches!(process_input(conn, engine, env), Drive::Keep) {
                        conn.state = ConnState::Draining;
                        break;
                    }
                    // Stop when the peer stops consuming its responses
                    // (backpressure) or the socket ran dry.
                    if conn.wbuf.len() >= WRITE_HIGH_WATER || n < READ_CHUNK {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Disposition::Close,
            }
        }
        // Common case: the responses fit the socket buffer — deliver now
        // rather than waiting for the next writable event.
        if matches!(flush_writes(conn), FlushOutcome::Fatal) {
            return Disposition::Close;
        }
        if conn.wbuf.is_empty() && matches!(conn.state, ConnState::Draining) {
            return Disposition::Close;
        }
    }
    Disposition::Keep
}

/// Write as much of the write ring as the socket accepts, without blocking.
fn flush_writes<P>(conn: &mut Conn<P>) -> FlushOutcome {
    while !conn.wbuf.is_empty() {
        match conn.stream.write(conn.wbuf.data()) {
            Ok(0) => return FlushOutcome::Fatal,
            Ok(n) => conn.wbuf.consume(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return FlushOutcome::Progress,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return FlushOutcome::Fatal,
        }
    }
    FlushOutcome::Progress
}

/// Drain every complete request in the read ring through the connection's
/// protocol adapter, appending response bytes straight into the write ring.
/// Anything but [`Drive::Keep`] makes the caller switch the connection to
/// [`ConnState::Draining`] (the final answer is already queued); only
/// [`Drive::CloseError`] counts as a protocol error.
fn process_input<E, P: ConnProto<E>>(
    conn: &mut Conn<P>,
    engine: &mut E,
    env: &WorkerEnv<'_>,
) -> Drive {
    let Conn {
        rbuf, wbuf, proto, ..
    } = conn;
    let (consumed, drive) = wbuf.append_with(|out| proto.process(engine, rbuf.data(), out));
    rbuf.consume(consumed);
    fold_stats(env, &mut conn.reported, conn.proto.stats());
    if !matches!(drive, Drive::Keep) {
        // Whatever input is still buffered will never be served; drop it.
        conn.rbuf.clear();
    }
    if matches!(drive, Drive::CloseError) {
        env.metrics.protocol_errors.incr(env.lane);
    }
    drive
}

/// The cache persona's background reaper: its own [`CacheSession`] sweeps
/// expired entries and enforces the memory budget every `interval`, then
/// announces quiescence so retirements (its own and the workers') are
/// actually freed. Re-checks the shutdown flag at least every
/// [`POLL_INTERVAL`], so shutdown joins stay bounded.
fn reaper_loop(cache: &CacheMap, interval: Duration, shutdown: &AtomicBool) {
    let mut session = cache.session();
    let step = interval.min(POLL_INTERVAL);
    let mut since_reap = Duration::ZERO;
    while !shutdown.load(Ordering::Acquire) {
        std::thread::sleep(step);
        since_reap += step;
        if since_reap >= interval {
            since_reap = Duration::ZERO;
            session.reap();
        }
    }
}

/// Test-only failure injection ([`ServerConfig::fault_key`]): panic before
/// any table execution when the next complete frame is a `GET` for the
/// configured key, exercising the worker's unwind isolation and the
/// drop-guard accounting without touching shared state.
fn maybe_inject_fault(data: &[u8], key: u64) {
    if let Ok(Some((frame, _))) = wire::decode_frame(data) {
        if let Ok(req) = wire::decode_request(frame.opcode, frame.payload) {
            if matches!(req, dlht_core::Request::Get(k) if k == key) {
                panic!("injected connection fault for key {key:#x} (test hook)");
            }
        }
    }
}

/// Fold the delta between the service's counters and what was already
/// reported into the server-wide totals (on this worker's metric lane).
fn fold_stats(env: &WorkerEnv<'_>, reported: &mut ConnStats, now: ConnStats) {
    env.metrics
        .frames
        .add(env.lane, now.frames - reported.frames);
    env.metrics.ops.add(env.lane, now.ops - reported.ops);
    env.metrics
        .batches
        .add(env.lane, now.batches - reported.batches);
    *reported = now;
}

// ---------------------------------------------------------------------------
// Admin plane
// ---------------------------------------------------------------------------

/// Accept loop for the admin port. Thread-per-connection is the right
/// trade here: the admin plane is a trusted, low-cardinality surface
/// (health probes, `STATS` scrapes) and blocking I/O with both timeouts
/// set keeps every call bounded — while staying on a separate port means
/// no amount of data-plane saturation can queue ahead of it.
fn admin_accept_loop(
    listener: TcpListener,
    backend: &Arc<dyn AdminBackend>,
    shutdown: &Arc<AtomicBool>,
    metrics: &Arc<ServerMetrics>,
    conns: &Arc<Mutex<HashMap<u64, TcpStream>>>,
    threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut conn_id = 0u64;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
        };
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let id = conn_id;
        conn_id += 1;
        let _ = stream.set_nodelay(true);
        // Both timeouts bound every blocking call: the read doubles as the
        // shutdown poll, the write means a stuck probe can never pin the
        // thread past the timeout.
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        if let Ok(clone) = stream.try_clone() {
            conns.lock().expect("admin conns lock").insert(id, clone);
        }
        let handle = {
            let backend = backend.clone();
            let shutdown = shutdown.clone();
            let metrics = metrics.clone();
            let conns = conns.clone();
            std::thread::spawn(move || {
                admin_connection(stream, &*backend, &shutdown, &metrics);
                conns.lock().expect("admin conns lock").remove(&id);
            })
        };
        let mut threads = threads.lock().expect("admin threads lock");
        threads.retain(|h| !h.is_finished());
        threads.push(handle);
    }
}

/// One admin connection. The first byte picks the dialect: the binary wire
/// magic ([`wire::MAGIC`]) enters the `STATS`/`LEN`/`PING` frame loop
/// (data opcodes rejected with [`WireError::AdminRestricted`]); anything
/// else is treated as an HTTP request line and served one
/// `GET /metrics` / `/metrics.json` / `/trace` response before closing —
/// so the same port answers typed probes and Prometheus scrapes.
fn admin_connection(
    mut stream: TcpStream,
    backend: &dyn AdminBackend,
    shutdown: &AtomicBool,
    metrics: &ServerMetrics,
) {
    let mut pending = ByteRing::new();
    let mut out: Vec<u8> = Vec::new();
    let mut binary: Option<bool> = None;
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        match pending.read_from(&mut stream, 4 * 1024) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        if binary.is_none() {
            binary = pending.data().first().map(|&b| b == wire::MAGIC);
        }
        if binary == Some(false) {
            // HTTP dialect: wait for the end of the header block, answer
            // once, close (the response says `Connection: close`).
            match find_header_end(pending.data()) {
                Some(end) => {
                    metrics.admin_http_requests.incr(0);
                    let head = &pending.data()[..end];
                    let response = metrics::respond_http(metrics, head);
                    let _ = stream.write_all(&response);
                    return;
                }
                None if pending.len() > metrics::MAX_HTTP_HEADER => return,
                None => continue,
            }
        }
        out.clear();
        let result = admin_process(backend, &mut pending, &mut out, metrics);
        if let Err(e) = &result {
            wire::encode_error_frame(&mut out, e);
        }
        if !out.is_empty() && stream.write_all(&out).is_err() {
            return;
        }
        if result.is_err() {
            metrics.protocol_errors.incr(0);
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    }
}

/// Byte offset just past the first `\r\n\r\n` in `data`, if present.
fn find_header_end(data: &[u8]) -> Option<usize> {
    data.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
}

/// Serve every complete admin frame in `pending`, appending responses to
/// `out`. The cache persona's `STATS` answer carries the extended payload
/// with expirations/evictions/hit counters.
fn admin_process(
    backend: &dyn AdminBackend,
    pending: &mut ByteRing,
    out: &mut Vec<u8>,
    metrics: &ServerMetrics,
) -> Result<(), WireError> {
    loop {
        let used = match wire::decode_frame(pending.data()) {
            Ok(None) => return Ok(()),
            Err(e) => return Err(e),
            Ok(Some((frame, used))) => {
                metrics.admin_frames.incr(0);
                match frame.opcode {
                    wire::op::STATS if frame.payload.is_empty() => match backend.cache_stats() {
                        Some(cache) => wire::encode_stats_cache(
                            out,
                            &backend.table_stats(),
                            backend.retired_indexes(),
                            &cache,
                        ),
                        None => wire::encode_stats(
                            out,
                            &backend.table_stats(),
                            backend.retired_indexes(),
                        ),
                    },
                    wire::op::LEN if frame.payload.is_empty() => {
                        wire::encode_len(out, backend.live_keys());
                    }
                    wire::op::STATS | wire::op::LEN => {
                        return Err(WireError::BadPayload {
                            opcode: frame.opcode,
                            len: frame.payload.len(),
                        });
                    }
                    wire::op::PING => {
                        wire::put_header(out, wire::resp::PONG, frame.payload.len());
                        out.extend_from_slice(frame.payload);
                    }
                    op @ (wire::op::GET
                    | wire::op::PUT
                    | wire::op::INSERT
                    | wire::op::DELETE
                    | wire::op::BATCH) => {
                        return Err(WireError::AdminRestricted(op));
                    }
                    other => return Err(WireError::UnknownOpcode(other)),
                }
                used
            }
        };
        pending.consume(used);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::DlhtClient;
    use dlht_core::{BatchPolicy, KvBackend, Request, Response};

    fn start() -> (DlhtServer, Arc<ShardedTable>) {
        let table = Arc::new(ShardedTable::with_capacity(4, 4_096));
        let server = DlhtServer::bind("127.0.0.1:0", table.clone()).expect("bind");
        (server, table)
    }

    #[test]
    fn tcp_roundtrip_singles_and_stats() {
        let (server, table) = start();
        let mut client = DlhtClient::connect(server.local_addr()).expect("connect");
        client.ping().unwrap();
        assert!(client.insert(1, 10).unwrap().inserted());
        assert_eq!(client.get(1).unwrap(), Some(10));
        assert_eq!(client.put(1, 11).unwrap(), Some(10));
        assert_eq!(client.delete(1).unwrap(), Some(11));
        assert_eq!(client.get(1).unwrap(), None);
        assert!(matches!(
            client.insert(u64::MAX, 1),
            Err(crate::client::NetError::Table(
                dlht_core::DlhtError::ReservedKey
            ))
        ));
        let _ = client.insert(2, 20).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.table.occupied_slots, 1);
        assert_eq!(client.server_len().unwrap(), 1);
        assert_eq!(table.get(2), Some(20), "served writes hit the real table");
        let counters = server.shutdown();
        assert_eq!(counters.connections, 1);
        assert_eq!(counters.protocol_errors, 0);
        assert!(counters.ops >= 7);
    }

    #[test]
    fn pipelined_and_batch_paths_match_local_semantics() {
        let (server, table) = start();
        let mut client = DlhtClient::connect(server.local_addr()).expect("connect");
        let reqs: Vec<Request> = (0..32u64).map(|k| Request::Insert(k, k * 3)).collect();
        let resps = client.pipelined(&reqs).unwrap();
        assert!(resps.iter().all(|r| r.succeeded()));
        let out = client
            .execute_requests(
                &[
                    Request::Get(31),
                    Request::Get(999), // miss -> stop
                    Request::Delete(0),
                ],
                BatchPolicy::StopOnFailure,
            )
            .unwrap();
        assert_eq!(out[0], Response::Value(Some(93)));
        assert_eq!(out[2], Response::Skipped);
        assert_eq!(table.len(), 32, "skipped delete must not run");
        server.shutdown();
    }

    #[test]
    fn garbage_closes_the_connection_but_not_the_server() {
        use std::io::Read;
        let (server, _table) = start();
        // Connection 1 sends garbage and must be rejected.
        {
            let mut bad = TcpStream::connect(server.local_addr()).unwrap();
            bad.write_all(&[0xAB; 32]).unwrap();
            let mut buf = Vec::new();
            let _ = bad.read_to_end(&mut buf); // server replies ERR then closes
            let (frame, _) = crate::wire::decode_frame(&buf).unwrap().unwrap();
            assert_eq!(frame.opcode, crate::wire::resp::ERR);
        }
        // Connection 2 still works.
        let mut good = DlhtClient::connect(server.local_addr()).unwrap();
        assert!(good.insert(5, 50).unwrap().inserted());
        assert_eq!(good.get(5).unwrap(), Some(50));
        let counters = server.shutdown();
        assert_eq!(counters.protocol_errors, 1);
    }

    #[test]
    fn shutdown_joins_all_threads_quickly() {
        let (server, _) = start();
        let mut clients: Vec<_> = (0..4)
            .map(|_| DlhtClient::connect(server.local_addr()).unwrap())
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            assert!(c.insert(i as u64, 1).unwrap().inserted());
        }
        let t = std::time::Instant::now();
        let counters = server.shutdown();
        assert!(
            t.elapsed() < Duration::from_secs(2),
            "graceful shutdown must be bounded"
        );
        assert_eq!(counters.connections, 4);
        assert_eq!(counters.active, 0);
    }

    #[test]
    fn worker_pool_size_is_configurable_and_connections_spread() {
        let table = Arc::new(ShardedTable::with_capacity(4, 4_096));
        let server = DlhtServer::bind_with(
            "127.0.0.1:0",
            table,
            ServerConfig {
                workers: 3,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        assert_eq!(server.workers(), 3);
        let mut clients: Vec<_> = (0..6u64)
            .map(|i| {
                let mut c = DlhtClient::connect(server.local_addr()).unwrap();
                assert!(c.insert(i, i).unwrap().inserted(), "key {i}");
                c
            })
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            assert_eq!(c.get(i as u64).unwrap(), Some(i as u64));
        }
        let counters = server.shutdown();
        assert_eq!(counters.connections, 6);
        assert_eq!(counters.active, 0);
    }

    #[test]
    fn admin_plane_serves_stats_and_rejects_data_ops() {
        let table = Arc::new(ShardedTable::with_capacity(4, 4_096));
        let server = DlhtServer::bind_with(
            "127.0.0.1:0",
            table,
            ServerConfig {
                admin_addr: Some("127.0.0.1:0".to_string()),
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let admin_addr = server.admin_addr().expect("admin plane configured");

        let mut data = DlhtClient::connect(server.local_addr()).unwrap();
        assert!(data.insert(9, 90).unwrap().inserted());

        let mut admin = DlhtClient::connect(admin_addr).unwrap();
        admin.ping().unwrap();
        assert_eq!(admin.server_len().unwrap(), 1);
        let stats = admin.stats().unwrap();
        assert_eq!(stats.table.occupied_slots, 1);
        // Data ops on the admin port are refused with the dedicated code.
        match admin.get(9) {
            Err(crate::client::NetError::Server { code, message }) => {
                assert_eq!(code, WireError::AdminRestricted(wire::op::GET).code());
                assert!(message.contains("admin"), "{message}");
            }
            other => panic!("expected an admin restriction, got {other:?}"),
        }
        let counters = server.shutdown();
        assert_eq!(counters.connections, 1, "admin conns are counted apart");
        assert!(counters.admin_frames >= 3);
    }
}
