//! The server's observability surface: one [`ServerMetrics`] per
//! [`crate::DlhtServer`] owning a `dlht-obs` [`MetricsRegistry`] (striped
//! counters, gauges, per-opcode/per-command latency histograms), the
//! per-worker slow-op [`TraceRing`]s, and the admin plane's HTTP
//! responders (`GET /metrics`, `/metrics.json`, `/trace`).
//!
//! Lane discipline: every worker thread passes its own lane index into the
//! striped instruments so hot-path increments never share a cache line;
//! the acceptor stamps each connection with its destination worker's lane
//! and the connection's drop guard decrements that same lane, keeping the
//! `active` gauge exact per cell. The admin plane uses lane 0 (low rate).

use crate::server::ServerCounters;
use dlht_core::{CacheMap, Request, ShardedTable};
use dlht_obs::json::Json;
use dlht_obs::{bytes_fingerprint, key_fingerprint, Counter, Gauge, Histogram, MetricsRegistry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Entries kept per worker in the slow-op ring (newest win).
pub const TRACE_RING_CAP: usize = 64;

/// Header-size cap for admin-plane HTTP requests.
pub(crate) const MAX_HTTP_HEADER: usize = 8 * 1024;

/// One slow (or, with `--trace-slow-us 0`, any) request captured by a
/// worker's trace ring — the p999-debugging breadcrumb: what ran, how
/// long, where, and how deep the pipeline was around it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Opcode (kv) or command (memcache) name.
    pub op: &'static str,
    /// Fingerprint of the key (SplitMix64 / FNV-1a mix — never the raw
    /// key).
    pub key_hash: u64,
    /// Decode→response-queued latency in microseconds.
    pub micros: u64,
    /// Shard the key routes to (0 where not applicable).
    pub shard: u32,
    /// Requests in the same drained pipeline window.
    pub queue_depth: u32,
    /// Monotone per-ring sequence number (ordering within a lane).
    pub seq: u64,
}

/// A fixed-size ring of the most recent qualifying requests on one worker.
#[derive(Debug)]
pub struct TraceRing {
    entries: dlht_util::Mutex<VecDeque<TraceEntry>>,
    seq: AtomicU64,
}

impl TraceRing {
    fn new() -> TraceRing {
        TraceRing {
            entries: dlht_util::Mutex::new(VecDeque::with_capacity(TRACE_RING_CAP)),
            seq: AtomicU64::new(0),
        }
    }

    // HOT: runs on the data path whenever a request crosses the slow
    // threshold (every request at `--trace-slow-us 0`); the dlht-util
    // mutex has no poisoning, so this stays panic-free.
    fn push(&self, mut entry: TraceEntry) {
        // ORDERING: seq only orders entries within this ring; Relaxed.
        entry.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock();
        if entries.len() >= TRACE_RING_CAP {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    fn drain_to(&self, out: &mut Vec<TraceEntry>) {
        out.extend(self.entries.lock().iter().cloned());
    }
}

/// Per-opcode (kv) or per-command (memcache) latency histogram handles.
enum ProtoHists {
    Kv {
        get: Histogram,
        put: Histogram,
        insert: Histogram,
        delete: Histogram,
        batch: Histogram,
    },
    Cache {
        /// Indexed by [`classify_line`]'s command index.
        cmds: Box<[(&'static str, Histogram)]>,
    },
}

/// The memcache commands that get their own latency series (index order is
/// [`classify_line`]'s contract); anything else lands in `other`.
const MC_COMMANDS: [&str; 10] = [
    "get", "gets", "set", "add", "replace", "delete", "touch", "incr", "decr", "other",
];

/// Map a memcache command line to `(command index, key fingerprint)`. The
/// index addresses [`MC_COMMANDS`]; the fingerprint mixes the first key
/// token (0 when the command carries none).
// HOT: runs once per command line on the memcache data path; panic-free.
pub(crate) fn classify_line(line: &[u8]) -> (usize, u64) {
    let mut parts = line.splitn(3, |&b| b == b' ').filter(|t| !t.is_empty());
    let cmd = parts.next().unwrap_or(b"");
    let idx = match cmd {
        b"get" => 0,
        b"gets" => 1,
        b"set" => 2,
        b"add" => 3,
        b"replace" => 4,
        b"delete" => 5,
        b"touch" => 6,
        b"incr" => 7,
        b"decr" => 8,
        _ => 9,
    };
    let key_fp = parts.next().map_or(0, bytes_fingerprint);
    (idx, key_fp)
}

/// The whole observability state of one running server: registry,
/// server-wide counter/gauge handles, per-persona latency histograms, and
/// the per-worker trace rings.
pub struct ServerMetrics {
    registry: Arc<MetricsRegistry>,
    pub(crate) connections: Counter,
    pub(crate) frames: Counter,
    pub(crate) ops: Counter,
    pub(crate) batches: Counter,
    pub(crate) protocol_errors: Counter,
    pub(crate) panics: Counter,
    pub(crate) admin_frames: Counter,
    pub(crate) admin_http_requests: Counter,
    pub(crate) active: Gauge,
    proto: ProtoHists,
    trace: Box<[Arc<TraceRing>]>,
    trace_slow_us: Option<u64>,
}

impl ServerMetrics {
    fn new_common(lanes: usize, trace_slow_us: Option<u64>, proto: ProtoHists) -> ServerMetrics {
        let registry = Arc::new(MetricsRegistry::new(lanes));
        ServerMetrics {
            connections: registry.counter(
                "dlht_connections_total",
                "Data connections accepted since bind",
            ),
            frames: registry.counter(
                "dlht_frames_total",
                "Request frames (kv) / command lines (memcache) decoded",
            ),
            ops: registry.counter("dlht_ops_total", "Table operations executed"),
            batches: registry.counter(
                "dlht_batches_total",
                "Batch executions (drained pipeline windows + explicit BATCH frames)",
            ),
            protocol_errors: registry.counter(
                "dlht_protocol_errors_total",
                "Connections closed for violating the protocol",
            ),
            panics: registry.counter(
                "dlht_panics_total",
                "Connections torn down by an unwind-caught handler panic",
            ),
            admin_frames: registry.counter(
                "dlht_admin_frames_total",
                "Binary frames served by the admin plane",
            ),
            admin_http_requests: registry.counter(
                "dlht_admin_http_requests_total",
                "HTTP requests served by the admin plane",
            ),
            active: registry.gauge("dlht_active_connections", "Data connections currently open"),
            proto,
            trace: (0..lanes.max(1))
                .map(|_| Arc::new(TraceRing::new()))
                .collect(),
            trace_slow_us,
            registry,
        }
    }

    /// Metrics for a kv-persona server with `lanes` workers.
    pub(crate) fn new_kv(lanes: usize, trace_slow_us: Option<u64>) -> ServerMetrics {
        let mut metrics = Self::new_common(
            lanes,
            trace_slow_us,
            ProtoHists::Cache { cmds: Box::new([]) },
        );
        let reg = metrics.registry.clone();
        let hist = |op: &str| {
            reg.histogram_with(
                "dlht_request_latency_ns",
                "Decode-to-response-queued request latency",
                &[("op", op)],
            )
        };
        metrics.proto = ProtoHists::Kv {
            get: hist("get"),
            put: hist("put"),
            insert: hist("insert"),
            delete: hist("delete"),
            batch: hist("batch"),
        };
        metrics
    }

    /// Metrics for a memcache-persona server with `lanes` workers.
    pub(crate) fn new_cache(lanes: usize, trace_slow_us: Option<u64>) -> ServerMetrics {
        let mut metrics = Self::new_common(
            lanes,
            trace_slow_us,
            ProtoHists::Cache { cmds: Box::new([]) },
        );
        let cmds: Box<[(&'static str, Histogram)]> = MC_COMMANDS
            .iter()
            .map(|&cmd| {
                (
                    cmd,
                    metrics.registry.histogram_with(
                        "dlht_request_latency_ns",
                        "Decode-to-response-queued request latency",
                        &[("cmd", cmd)],
                    ),
                )
            })
            .collect();
        metrics.proto = ProtoHists::Cache { cmds };
        metrics
    }

    /// The underlying registry, for scrape-time callback registration
    /// (table/cache gauges, buffer bytes).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The per-opcode recording handle for worker `lane` (kv persona only).
    pub(crate) fn kv_obs(&self, lane: usize) -> Option<ServiceObs> {
        match &self.proto {
            ProtoHists::Kv {
                get,
                put,
                insert,
                delete,
                batch,
            } => Some(ServiceObs {
                get: get.clone(),
                put: put.clone(),
                insert: insert.clone(),
                delete: delete.clone(),
                batch: batch.clone(),
                trace: self.lane_ring(lane),
                trace_slow_us: self.trace_slow_us,
            }),
            ProtoHists::Cache { .. } => None,
        }
    }

    /// The per-command recording handle for worker `lane` (memcache only).
    pub(crate) fn mc_obs(&self, lane: usize) -> Option<McObs> {
        match &self.proto {
            ProtoHists::Cache { cmds } => Some(McObs {
                cmds: cmds.clone().into(),
                trace: self.lane_ring(lane),
                trace_slow_us: self.trace_slow_us,
            }),
            ProtoHists::Kv { .. } => None,
        }
    }

    fn lane_ring(&self, lane: usize) -> Arc<TraceRing> {
        let idx = lane % self.trace.len().max(1);
        self.trace
            .get(idx)
            .cloned()
            .unwrap_or_else(|| Arc::new(TraceRing::new()))
    }

    /// All trace-ring entries across every worker, slowest first.
    pub fn trace_entries(&self) -> Vec<TraceEntry> {
        let mut out = Vec::new();
        for ring in self.trace.iter() {
            ring.drain_to(&mut out);
        }
        out.sort_by(|a, b| b.micros.cmp(&a.micros).then(b.seq.cmp(&a.seq)));
        out
    }

    /// The legacy counter snapshot ([`crate::DlhtServer::counters`]),
    /// folded from the striped registry cells.
    pub fn server_counters(&self) -> ServerCounters {
        // ORDERING: uniformly Relaxed (inside Counter/Gauge::value) — this
        // is a statistical snapshot with no synchronizing role; exactness
        // at quiescence comes from the thread joins in shutdown(), not from
        // memory ordering here.
        ServerCounters {
            connections: self.connections.value(),
            active: self.active.value(),
            frames: self.frames.value(),
            ops: self.ops.value(),
            batches: self.batches.value(),
            protocol_errors: self.protocol_errors.value(),
            panics: self.panics.value(),
            admin_frames: self.admin_frames.value(),
        }
    }

    /// Render the registry as Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        self.registry.snapshot().render_prometheus()
    }

    /// Render the registry as a `dlht-obs/v1` JSON document.
    pub fn render_json(&self) -> String {
        self.registry.snapshot().to_json().render()
    }

    /// Render the slow-op trace rings as a JSON document.
    pub fn render_trace_json(&self) -> String {
        let entries: Vec<Json> = self
            .trace_entries()
            .into_iter()
            .map(|e| {
                Json::obj([
                    ("op".to_string(), Json::from(e.op)),
                    ("key_hash".to_string(), Json::from(e.key_hash)),
                    ("micros".to_string(), Json::from(e.micros)),
                    ("shard".to_string(), Json::from(e.shard)),
                    ("queue_depth".to_string(), Json::from(e.queue_depth)),
                    ("seq".to_string(), Json::from(e.seq)),
                ])
            })
            .collect();
        Json::obj([
            ("schema".to_string(), Json::from("dlht-trace/v1")),
            (
                "trace_slow_us".to_string(),
                match self.trace_slow_us {
                    Some(us) => Json::from(us),
                    None => Json::Null,
                },
            ),
            ("entries".to_string(), Json::Arr(entries)),
        ])
        .render()
    }
}

/// Register the kv persona's table gauges: scrape-time callbacks over the
/// live [`ShardedTable`]. (`LEN`/live-key counting is deliberately not
/// exposed — it is linear-time per scrape.)
pub(crate) fn register_kv_gauges(registry: &MetricsRegistry, table: Arc<ShardedTable>) {
    let t = table.clone();
    registry.gauge_fn(
        "dlht_table_occupied_slots",
        "Occupied slots across all shards",
        &[],
        move || t.stats().occupied_slots as u64,
    );
    let t = table.clone();
    registry.gauge_fn(
        "dlht_table_addressable_slots",
        "Addressable slots across all shards",
        &[],
        move || t.stats().addressable_slots as u64,
    );
    let t = table.clone();
    registry.gauge_fn(
        "dlht_table_occupancy_ppm",
        "Table occupancy in parts per million",
        &[],
        move || (t.stats().occupancy * 1e6) as u64,
    );
    let t = table.clone();
    registry.gauge_fn(
        "dlht_table_index_bytes",
        "Bytes of index structure across all shards",
        &[],
        move || t.stats().index_bytes as u64,
    );
    let t = table.clone();
    registry.counter_fn(
        "dlht_table_resizes_total",
        "Completed index resizes across all shards",
        &[],
        move || t.stats().resizes,
    );
    let t = table.clone();
    registry.gauge_fn(
        "dlht_table_retired_indexes",
        "Old index generations awaiting epoch reclamation",
        &[],
        move || t.retired_indexes() as u64,
    );
    let shards = table.shard_stats().len();
    for shard in 0..shards {
        let label = shard.to_string();
        let t = table.clone();
        registry.gauge_fn(
            "dlht_shard_occupied_slots",
            "Occupied slots in one shard",
            &[("shard", label.as_str())],
            move || {
                t.shard_stats()
                    .get(shard)
                    .map_or(0, |s| s.occupied_slots as u64)
            },
        );
        let t = table.clone();
        registry.gauge_fn(
            "dlht_shard_generation",
            "Resize generation of one shard's index",
            &[("shard", label.as_str())],
            move || {
                t.shard_stats()
                    .get(shard)
                    .map_or(0, |s| u64::from(s.generation))
            },
        );
    }
}

/// Register the cache persona's gauges and counters: the table structure
/// plus the hit/expiry/eviction and memory-awareness story (§5).
pub(crate) fn register_cache_gauges(registry: &MetricsRegistry, cache: Arc<CacheMap>) {
    let c = cache.clone();
    registry.gauge_fn(
        "dlht_table_occupied_slots",
        "Occupied slots across all shards",
        &[],
        move || c.table_stats().occupied_slots as u64,
    );
    let c = cache.clone();
    registry.gauge_fn(
        "dlht_table_addressable_slots",
        "Addressable slots across all shards",
        &[],
        move || c.table_stats().addressable_slots as u64,
    );
    let c = cache.clone();
    registry.gauge_fn(
        "dlht_table_occupancy_ppm",
        "Table occupancy in parts per million",
        &[],
        move || (c.table_stats().occupancy * 1e6) as u64,
    );
    let c = cache.clone();
    registry.counter_fn(
        "dlht_table_resizes_total",
        "Completed index resizes across all shards",
        &[],
        move || c.table_stats().resizes,
    );
    let c = cache.clone();
    registry.gauge_fn(
        "dlht_table_retired_indexes",
        "Old index generations awaiting epoch reclamation",
        &[],
        move || c.retired_indexes() as u64,
    );
    /// (metric name, help, field picker) for stats-backed callback metrics.
    type StatMetric = (
        &'static str,
        &'static str,
        fn(&dlht_core::CacheStats) -> u64,
    );
    let counters: [StatMetric; 6] = [
        ("dlht_cache_hits_total", "get hits", |s| s.hits),
        ("dlht_cache_misses_total", "get misses", |s| s.misses),
        ("dlht_cache_sets_total", "Completed stores", |s| s.sets),
        ("dlht_cache_expired_total", "Entries expired by TTL", |s| {
            s.expired
        }),
        (
            "dlht_cache_evicted_total",
            "Entries evicted under the memory budget",
            |s| s.evicted,
        ),
        ("dlht_cache_flushes_total", "flush_all invocations", |s| {
            s.flushes
        }),
    ];
    for (name, help, pick) in counters {
        let c = cache.clone();
        registry.counter_fn(name, help, &[], move || pick(&c.stats()));
    }
    let gauges: [StatMetric; 6] = [
        ("dlht_cache_items", "Live cache entries", |s| s.items),
        (
            "dlht_cache_value_bytes",
            "Resident value bytes (the memory-budget numerator)",
            |s| s.value_bytes,
        ),
        ("dlht_cache_index_bytes", "Bytes of index structure", |s| {
            s.index_bytes
        }),
        (
            "dlht_cache_memory_budget_bytes",
            "Configured memory budget (0 = unlimited)",
            |s| s.budget,
        ),
        (
            "dlht_pending_reclaim_bytes",
            "Bytes retired but not yet epoch-reclaimed",
            |s| s.pending_reclaim_bytes,
        ),
        (
            "dlht_cache_uptime_seconds",
            "Seconds since the cache was built",
            |s| u64::from(s.uptime_secs),
        ),
    ];
    for (name, help, pick) in gauges {
        let c = cache.clone();
        registry.gauge_fn(name, help, &[], move || pick(&c.stats()));
    }
}

/// Per-worker recording handle for the kv persona: one histogram per
/// opcode plus this lane's trace ring.
#[derive(Clone)]
pub struct ServiceObs {
    get: Histogram,
    put: Histogram,
    insert: Histogram,
    delete: Histogram,
    batch: Histogram,
    trace: Arc<TraceRing>,
    trace_slow_us: Option<u64>,
}

impl ServiceObs {
    // HOT: once per request on the kv data path; panic-free.
    /// Record one request's decode→response-queued latency and, past the
    /// slow threshold, a trace entry.
    #[inline]
    pub(crate) fn record_request(&self, req: &Request, shard: u32, queue_depth: u32, ns: u64) {
        let (op, hist) = match req {
            Request::Get(_) => ("get", &self.get),
            Request::Put(..) => ("put", &self.put),
            Request::Insert(..) => ("insert", &self.insert),
            Request::Delete(_) => ("delete", &self.delete),
        };
        hist.record(ns);
        if let Some(limit) = self.trace_slow_us {
            let micros = ns / 1_000;
            if micros >= limit {
                self.trace.push(TraceEntry {
                    op,
                    key_hash: key_fingerprint(req.key()),
                    micros,
                    shard,
                    queue_depth,
                    seq: 0,
                });
            }
        }
    }

    // HOT: once per explicit BATCH frame on the kv data path; panic-free.
    /// Record one explicit `BATCH` frame's end-to-end latency and, past the
    /// slow threshold, a trace entry (`key_hash` fingerprints the batch's
    /// first key; `queue_depth` is the batch size).
    #[inline]
    pub(crate) fn record_batch(&self, first_key: Option<u64>, len: u32, ns: u64) {
        self.batch.record(ns);
        if let Some(limit) = self.trace_slow_us {
            let micros = ns / 1_000;
            if micros >= limit {
                self.trace.push(TraceEntry {
                    op: "batch",
                    key_hash: first_key.map_or(0, key_fingerprint),
                    micros,
                    shard: 0,
                    queue_depth: len,
                    seq: 0,
                });
            }
        }
    }
}

/// Per-worker recording handle for the memcache persona: one histogram per
/// command (indexed by `classify_line`) plus this lane's trace ring.
#[derive(Clone)]
pub struct McObs {
    cmds: Arc<[(&'static str, Histogram)]>,
    trace: Arc<TraceRing>,
    trace_slow_us: Option<u64>,
}

impl McObs {
    // HOT: once per command line on the memcache data path; panic-free.
    /// Record one command's decode→response-queued latency and, past the
    /// slow threshold, a trace entry.
    #[inline]
    pub(crate) fn record(&self, cmd_idx: usize, key_fp: u64, ns: u64) {
        let Some((name, hist)) = self.cmds.get(cmd_idx) else {
            return;
        };
        hist.record(ns);
        if let Some(limit) = self.trace_slow_us {
            let micros = ns / 1_000;
            if micros >= limit {
                self.trace.push(TraceEntry {
                    op: name,
                    key_hash: key_fp,
                    micros,
                    shard: 0,
                    queue_depth: 0,
                    seq: 0,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Admin-plane HTTP
// ---------------------------------------------------------------------------

/// Build the full HTTP/1.1 response for one admin request whose header
/// block is in `head`. Always `Connection: close` — the admin plane serves
/// one HTTP request per connection.
pub(crate) fn respond_http(metrics: &ServerMetrics, head: &[u8]) -> Vec<u8> {
    let first_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(b"");
    let mut parts = first_line.split(|&b| b == b' ').filter(|t| !t.is_empty());
    let method = parts.next().unwrap_or(b"");
    let path = parts.next().unwrap_or(b"");
    if method != b"GET" {
        return http_response(
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
    }
    // Strip any query string; the endpoints take no parameters.
    let path = path.split(|&b| b == b'?').next().unwrap_or(b"");
    match path {
        b"/metrics" => http_response(
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &metrics.render_prometheus(),
        ),
        b"/metrics.json" => http_response("200 OK", "application/json", &metrics.render_json()),
        b"/trace" => http_response("200 OK", "application/json", &metrics.render_trace_json()),
        _ => http_response("404 Not Found", "text/plain; charset=utf-8", "not found\n"),
    }
}

fn http_response(status: &str, content_type: &str, body: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(b"HTTP/1.1 ");
    out.extend_from_slice(status.as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    out.extend_from_slice(body.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\nConnection: close\r\n\r\n");
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_line_maps_commands_and_keys() {
        assert_eq!(classify_line(b"get foo").0, 0);
        assert_eq!(classify_line(b"gets foo bar").0, 1);
        assert_eq!(classify_line(b"set k 0 0 3").0, 2);
        assert_eq!(classify_line(b"incr n 5").0, 7);
        assert_eq!(classify_line(b"version").0, 9);
        assert_eq!(classify_line(b""), (9, 0));
        let (_, fp) = classify_line(b"get foo");
        assert_eq!(fp, bytes_fingerprint(b"foo"));
        // Collapsed spaces still find the key token.
        assert_eq!(classify_line(b"get  foo").1, fp);
    }

    #[test]
    fn trace_ring_keeps_newest_and_sorts_slowest_first() {
        let metrics = ServerMetrics::new_kv(2, Some(0));
        let obs = metrics.kv_obs(0).unwrap();
        for i in 0..(TRACE_RING_CAP as u64 + 10) {
            obs.record_request(&Request::Get(i), 1, 4, i * 1_000);
        }
        let entries = metrics.trace_entries();
        assert_eq!(entries.len(), TRACE_RING_CAP, "ring is bounded");
        // Slowest first, and the oldest (fastest) entries were evicted.
        assert!(entries[0].micros >= entries[entries.len() - 1].micros);
        assert_eq!(entries[0].micros, TRACE_RING_CAP as u64 + 9);
        assert_eq!(entries[0].op, "get");
        assert_eq!(entries[0].shard, 1);
        assert_eq!(entries[0].queue_depth, 4);
    }

    #[test]
    fn trace_threshold_filters() {
        let metrics = ServerMetrics::new_kv(1, Some(100));
        let obs = metrics.kv_obs(0).unwrap();
        obs.record_request(&Request::Get(1), 0, 1, 50_000); // 50 µs: below
        obs.record_request(&Request::Put(2, 2), 0, 1, 250_000); // 250 µs: above
        let entries = metrics.trace_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].op, "put");
        let disabled = ServerMetrics::new_kv(1, None);
        let obs = disabled.kv_obs(0).unwrap();
        obs.record_request(&Request::Get(1), 0, 1, u64::MAX / 2);
        assert!(disabled.trace_entries().is_empty());
    }

    #[test]
    fn http_responder_routes() {
        let metrics = ServerMetrics::new_kv(1, Some(0));
        let ok = respond_http(&metrics, b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        let text = String::from_utf8(ok).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("dlht_connections_total 0"), "{text}");
        assert!(text.contains("dlht_request_latency_ns_bucket"), "{text}");
        let json = respond_http(&metrics, b"GET /metrics.json?x=1 HTTP/1.1\r\n\r\n");
        assert!(String::from_utf8(json).unwrap().contains("dlht-obs/v1"));
        let trace = respond_http(&metrics, b"GET /trace HTTP/1.1\r\n\r\n");
        assert!(String::from_utf8(trace).unwrap().contains("dlht-trace/v1"));
        let missing = respond_http(&metrics, b"GET /nope HTTP/1.1\r\n\r\n");
        assert!(String::from_utf8(missing)
            .unwrap()
            .starts_with("HTTP/1.1 404"));
        let post = respond_http(&metrics, b"POST /metrics HTTP/1.1\r\n\r\n");
        assert!(String::from_utf8(post).unwrap().starts_with("HTTP/1.1 405"));
    }

    #[test]
    fn mc_obs_records_per_command() {
        let metrics = ServerMetrics::new_cache(2, Some(0));
        let obs = metrics.mc_obs(1).unwrap();
        let (idx, fp) = classify_line(b"set k 0 0 3");
        obs.record(idx, fp, 42_000);
        let text = metrics.render_prometheus();
        assert!(
            text.contains("dlht_request_latency_ns_count{cmd=\"set\"} 1"),
            "{text}"
        );
        assert_eq!(metrics.trace_entries()[0].op, "set");
    }

    #[test]
    fn server_counters_fold_lanes() {
        let metrics = ServerMetrics::new_kv(4, None);
        metrics.connections.incr(0);
        metrics.connections.incr(3);
        metrics.active.add(1, 1);
        metrics.active.sub(1, 1);
        metrics.ops.add(2, 10);
        let c = metrics.server_counters();
        assert_eq!(c.connections, 2);
        assert_eq!(c.active, 0);
        assert_eq!(c.ops, 10);
    }
}
