//! # dlht-net
//!
//! A pipelined key-value wire protocol and server/client subsystem over the
//! DLHT sharded table — the layer that lets the repository answer requests
//! from outside the process.
//!
//! The design follows the shape production cache servers (Twitter's Pelikan,
//! memcached's binary protocol) converged on: a thin, dependency-free,
//! length-prefixed binary protocol whose **client-side pipelining maps
//! directly onto server-side batched execution** — which is exactly the
//! interface DLHT's batch + prefetch engine (paper §3.3) was built for.
//! Requests a client writes back-to-back are drained by the server into one
//! reusable [`dlht_core::Batch`], prefetched at decode time, and executed
//! via `execute_prefetched`: wire pipelining ≙ prefetch pipeline depth.
//!
//! ## Pieces
//!
//! * [`wire`] — the versioned frame codec: `GET`/`PUT`/`INSERT`/`DELETE`
//!   plus `BATCH` (explicit [`dlht_core::BatchPolicy`]), `STATS` (typed),
//!   `LEN` and `PING`, with zero-copy decode into [`dlht_core::Request`].
//! * [`service`] — the transport-independent connection engine (frames →
//!   batch → responses) every transport shares.
//! * [`buf`] — [`ByteRing`], the per-connection sliding byte buffer with
//!   amortized O(1) consumption and capacity release on drain.
//! * [`poll`] — a dependency-free readiness abstraction: [`poll::Poller`]
//!   over `poll(2)` plus a loopback-socket [`poll::Waker`].
//! * [`server`] — [`DlhtServer`]: an event-driven non-blocking readiness
//!   loop with a fixed worker pool (one cached
//!   [`dlht_core::ShardedSession`] per worker, shared by all of that
//!   worker's connections), per-connection read/write rings with
//!   write-side backpressure, an optional admin plane on a separate port
//!   (`STATS`/`LEN`/`PING`), graceful shutdown, live counters.
//! * [`client`] — [`DlhtClient`]: a pipelining client over any
//!   `Read + Write` transport (TCP or loopback).
//! * [`loopback`] — a deterministic in-process transport so protocol tests
//!   run offline, plus [`LoopbackBackend`] which puts any
//!   [`dlht_core::KvBackend`] behind the wire for the differential oracle.
//! * [`remote`] — [`RemoteBackend`]: a server presented as a local
//!   `KvBackend` (one connection per worker thread), so workloads like YCSB
//!   run over the wire unchanged.
//!
//! ## Example (in-process loopback; the TCP path is identical)
//!
//! ```
//! use dlht_core::{BatchPolicy, Request, Response, ShardedTable};
//! use dlht_net::{loopback_client, BackendEngine};
//! use std::sync::Arc;
//!
//! let table = Arc::new(ShardedTable::with_capacity(4, 10_000));
//! let mut client = loopback_client(BackendEngine(table));
//!
//! client.insert(7, 700).unwrap();
//! assert_eq!(client.get(7).unwrap(), Some(700));
//!
//! // Pipelined: one flush, one server-side prefetched batch execution.
//! let reqs: Vec<Request> = (0..16).map(Request::Get).collect();
//! let resps = client.pipelined(&reqs).unwrap();
//! assert_eq!(resps[7], Response::Value(Some(700)));
//!
//! // Typed stats — no string parsing.
//! let stats = client.stats().unwrap();
//! assert_eq!(stats.table.occupied_slots, 1);
//! ```
//!
//! Over TCP: [`DlhtServer::bind`] + [`DlhtClient::connect`] — see
//! `examples/server.rs` / `examples/client.rs` at the workspace root.

// The one unsafe site in this crate is the `poll(2)` FFI declaration and
// call in [`poll`]; everything else stays safe, and that site carries a
// `// SAFETY:` justification.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod buf;
pub mod client;
pub mod loopback;
pub mod memcache;
pub mod metrics;
pub mod poll;
pub mod remote;
pub mod server;
pub mod service;
pub mod test_util;
pub mod wire;

pub use buf::ByteRing;
pub use client::{DlhtClient, NetError};
pub use loopback::{loopback_client, LoopbackBackend, LoopbackTransport};
pub use memcache::MemcacheConn;
pub use metrics::{ServerMetrics, TraceEntry, TRACE_RING_CAP};
pub use remote::{flag_value, server_addr_from_args, RemoteBackend};
pub use server::{AdminBackend, DlhtServer, ServerConfig, ServerCounters, WRITE_HIGH_WATER};
pub use service::{BackendEngine, ConnStats, Drive, Service, ServiceEngine};
pub use test_util::{bind_ephemeral, bind_ephemeral_memcache};
pub use wire::{RemoteCacheStats, RemoteStats, WireError, MAX_PAYLOAD, VERSION};
