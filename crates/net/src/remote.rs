//! [`RemoteBackend`]: a `dlht-net` server presented as a local
//! [`KvBackend`], so every workload, benchmark, and test harness in the
//! repository can run **over the wire** unchanged (`--server <addr>` in the
//! workload-driving binaries).
//!
//! The workload runner drives one shared `&dyn KvBackend` from many threads;
//! a TCP connection cannot be shared that way without serializing everything
//! behind a lock. `RemoteBackend` therefore keeps **one connection per
//! (thread, backend)** in a thread-local registry — mirroring the server's
//! thread-per-connection model, so an N-thread workload run exercises N
//! server connections. Batch execution maps to one `BATCH` frame (one round
//! trip per batch: wire batching ≙ table batching).
//!
//! Network failures inside the `KvBackend` surface (which has no error
//! channel for Gets/Puts/Deletes) **panic** with context rather than
//! silently reporting misses — a measurement harness must never turn a dead
//! server into plausible-looking data.

use crate::client::{DlhtClient, NetError};
use crate::wire::RemoteStats;
use dlht_core::{
    Batch, BatchPolicy, DlhtError, InsertOutcome, KvBackend, MapFeatures, Request, Response,
    TableStats,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_BACKEND_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's open connections, one per live [`RemoteBackend`].
    static CONNECTIONS: RefCell<HashMap<u64, DlhtClient<TcpStream>>> =
        RefCell::new(HashMap::new());
}

/// A remote `dlht-net` server behind the [`KvBackend`] trait (module docs
/// above).
pub struct RemoteBackend {
    addr: String,
    id: u64,
}

impl RemoteBackend {
    /// Connect to `addr` (e.g. `127.0.0.1:4455`), validating the server with
    /// a `PING` round trip.
    pub fn connect(addr: impl Into<String>) -> Result<RemoteBackend, NetError> {
        let backend = RemoteBackend {
            addr: addr.into(),
            id: NEXT_BACKEND_ID.fetch_add(1, Ordering::Relaxed),
        };
        backend.try_with_conn(|c| c.ping())?;
        Ok(backend)
    }

    /// The server address this backend talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Run `f` on this thread's connection, opening it on first use. A
    /// failed operation drops the connection so the next call reconnects.
    fn try_with_conn<R>(
        &self,
        f: impl FnOnce(&mut DlhtClient<TcpStream>) -> Result<R, NetError>,
    ) -> Result<R, NetError> {
        CONNECTIONS.with(|cell| {
            let mut conns = cell.borrow_mut();
            let client = match conns.entry(self.id) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(DlhtClient::connect(&self.addr)?)
                }
            };
            let result = f(client);
            // A transport/protocol failure poisons the connection; a table
            // error (reserved key, full table) is a healthy response.
            if matches!(result, Err(ref e) if !matches!(e, NetError::Table(_))) {
                conns.remove(&self.id);
            }
            result
        })
    }

    fn with_conn<R>(&self, f: impl FnOnce(&mut DlhtClient<TcpStream>) -> Result<R, NetError>) -> R {
        self.try_with_conn(f)
            .unwrap_or_else(|e| panic!("remote backend {} failed: {e}", self.addr))
    }

    /// Typed statistics snapshot from the server.
    pub fn remote_stats(&self) -> RemoteStats {
        self.with_conn(|c| c.stats())
    }
}

impl Drop for RemoteBackend {
    fn drop(&mut self) {
        // Release the dropping thread's connection for this backend so
        // repeated create/drop cycles on one thread don't accumulate open
        // sockets. Other threads' entries (keyed by this backend's unique
        // id, never reused) die with their threads.
        let _ = CONNECTIONS.try_with(|cell| {
            if let Ok(mut conns) = cell.try_borrow_mut() {
                conns.remove(&self.id);
            }
        });
    }
}

impl KvBackend for RemoteBackend {
    fn get(&self, key: u64) -> Option<u64> {
        self.with_conn(|c| c.get(key))
    }

    fn insert(&self, key: u64, value: u64) -> Result<InsertOutcome, DlhtError> {
        self.try_with_conn(|c| c.insert(key, value))
            .map_err(|e| match e {
                NetError::Table(table_err) => table_err,
                other => panic!("remote backend {} failed: {other}", self.addr),
            })
    }

    fn put(&self, key: u64, value: u64) -> Option<u64> {
        self.with_conn(|c| c.put(key, value))
    }

    fn delete(&self, key: u64) -> Option<u64> {
        self.with_conn(|c| c.delete(key))
    }

    fn len(&self) -> usize {
        self.with_conn(|c| c.server_len()) as usize
    }

    fn name(&self) -> &'static str {
        "DLHT-Remote"
    }

    fn features(&self) -> MapFeatures {
        MapFeatures::dlht()
    }

    fn stats(&self) -> TableStats {
        self.remote_stats().table
    }

    fn retired_indexes(&self) -> usize {
        self.remote_stats().retired as usize
    }

    fn supports_batching(&self) -> bool {
        true
    }

    fn execute(&self, batch: &mut Batch, policy: BatchPolicy) {
        self.with_conn(|c| c.execute(batch, policy));
    }

    fn execute_batch(&self, requests: &[Request], policy: BatchPolicy) -> Vec<Response> {
        let mut batch = Batch::from(requests);
        self.execute(&mut batch, policy);
        batch.into_responses()
    }
}

/// Scan an argument list for `--name VALUE` / `--name=VALUE` (the one flag
/// parser the `dlht-net` binaries and examples share). A flag with a
/// missing value yields `None`.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    let eq = format!("{name}=");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(v) = arg.strip_prefix(&eq) {
            return Some(v.to_string());
        }
        if arg == name {
            return iter.next().cloned();
        }
    }
    None
}

/// Scan an argument list for `--server ADDR` / `--server=ADDR`, falling back
/// to the `DLHT_SERVER` environment variable — the remote-backend switch the
/// workload-driving binaries share.
pub fn server_addr_from_args<I: IntoIterator<Item = String>>(args: I) -> Option<String> {
    let args: Vec<String> = args.into_iter().collect();
    flag_value(&args, "--server")
        .or_else(|| std::env::var("DLHT_SERVER").ok().filter(|v| !v.is_empty()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::DlhtServer;
    use dlht_core::ShardedTable;
    use std::sync::Arc;

    #[test]
    fn server_addr_parses_both_spellings() {
        assert_eq!(
            server_addr_from_args(["--server".into(), "1.2.3.4:5".into()]),
            Some("1.2.3.4:5".to_string())
        );
        assert_eq!(
            server_addr_from_args(["--server=h:1".into()]),
            Some("h:1".to_string())
        );
        if std::env::var("DLHT_SERVER").is_err() {
            assert_eq!(server_addr_from_args(["--smoke".into()]), None);
            assert_eq!(server_addr_from_args(["--server".into()]), None);
        }
    }

    #[test]
    fn remote_backend_roundtrip_and_multithreaded_connections() {
        let table = Arc::new(ShardedTable::with_capacity(2, 4_096));
        let server = DlhtServer::bind("127.0.0.1:0", table).expect("bind");
        let remote = RemoteBackend::connect(server.local_addr().to_string()).expect("connect");
        assert!(remote.insert(1, 10).unwrap().inserted());
        assert_eq!(remote.get(1), Some(10));
        // Each worker thread gets its own connection.
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let remote = &remote;
                s.spawn(move || {
                    for k in 0..50u64 {
                        let key = 1_000 + t * 100 + k;
                        assert!(remote.insert(key, key).unwrap().inserted());
                        assert_eq!(remote.get(key), Some(key));
                    }
                });
            }
        });
        assert_eq!(remote.len(), 1 + 150);
        let out = remote.execute_batch(
            &[Request::Get(1), Request::Delete(1), Request::Get(1)],
            BatchPolicy::RunAll,
        );
        assert_eq!(out[0], Response::Value(Some(10)));
        assert_eq!(out[2], Response::Value(None));
        let counters = server.shutdown();
        assert!(
            counters.connections >= 4,
            "main + 3 worker threads = at least 4 connections, saw {}",
            counters.connections
        );
    }
}
